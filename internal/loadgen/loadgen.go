// Package loadgen is the open-loop load harness behind `fpbench -load`:
// arrival-rate-scheduled request generation against a live fpserve, with
// zipfian key popularity over a generated workload corpus, coordinated-
// omission-safe latency capture and a JSON load report gated by
// declarative SLO assertions.
//
// Open-loop means the arrival schedule is fixed in advance and never waits
// for responses: each request has an *intended* send time derived from the
// phase's rate function, and its recorded latency runs from that intended
// time to completion. A server that stalls therefore accumulates latency
// in the report even while it accepts no work — the exact tail behavior a
// closed-loop (send-after-response) driver hides by silently slowing its
// own offered load (coordinated omission). The Wang–Wong evaluation
// pipeline has highly non-uniform per-request cost, so the corpus draws
// workloads of varying size and the zipf distribution skews popularity the
// way a shared serving tier sees it.
package loadgen

import (
	"encoding/json"
	"fmt"
	"time"
)

// Shape names a phase's rate schedule.
const (
	ShapeConstant = "constant"
	ShapeRamp     = "ramp"
	ShapeBurst    = "burst"
)

// PhaseSpec is one segment of the arrival schedule.
type PhaseSpec struct {
	// Name labels the phase in the report and in SLO assertions.
	Name string `json:"name"`
	// DurationMs is the phase length on the intended timeline.
	DurationMs int64 `json:"duration_ms"`
	// Shape is "constant" (Rate throughout), "ramp" (Rate to EndRate
	// linearly) or "burst" (Rate, with BurstRate for the first BurstMs of
	// every PeriodMs). Empty defaults to "constant", or to "ramp" when
	// EndRate is set.
	Shape string `json:"shape,omitempty"`
	// Rate is the arrival rate in requests/second (the baseline rate for
	// burst phases).
	Rate float64 `json:"rate"`
	// EndRate is the final rate of a ramp phase.
	EndRate float64 `json:"end_rate,omitempty"`
	// BurstRate/BurstMs/PeriodMs define a burst phase: every PeriodMs the
	// rate jumps to BurstRate for BurstMs, then falls back to Rate.
	BurstRate float64 `json:"burst_rate,omitempty"`
	BurstMs   int64   `json:"burst_ms,omitempty"`
	PeriodMs  int64   `json:"period_ms,omitempty"`
}

// shape resolves the effective shape.
func (p PhaseSpec) shape() string {
	if p.Shape != "" {
		return p.Shape
	}
	if p.EndRate > 0 {
		return ShapeRamp
	}
	return ShapeConstant
}

// duration returns the phase length.
func (p PhaseSpec) duration() time.Duration {
	return time.Duration(p.DurationMs) * time.Millisecond
}

// rateAt returns the scheduled arrival rate at offset off into the phase.
func (p PhaseSpec) rateAt(off time.Duration) float64 {
	switch p.shape() {
	case ShapeRamp:
		frac := float64(off) / float64(p.duration())
		return p.Rate + (p.EndRate-p.Rate)*frac
	case ShapeBurst:
		period := time.Duration(p.PeriodMs) * time.Millisecond
		if off%period < time.Duration(p.BurstMs)*time.Millisecond {
			return p.BurstRate
		}
		return p.Rate
	default:
		return p.Rate
	}
}

// validate rejects schedules the engine cannot run.
func (p PhaseSpec) validate() error {
	if p.Name == "" {
		return fmt.Errorf("loadgen: phase without a name")
	}
	if p.DurationMs <= 0 {
		return fmt.Errorf("loadgen: phase %q: duration_ms must be > 0, got %d", p.Name, p.DurationMs)
	}
	if p.Rate <= 0 {
		return fmt.Errorf("loadgen: phase %q: rate must be > 0, got %v", p.Name, p.Rate)
	}
	switch p.shape() {
	case ShapeConstant:
	case ShapeRamp:
		if p.EndRate <= 0 {
			return fmt.Errorf("loadgen: phase %q: ramp needs end_rate > 0", p.Name)
		}
	case ShapeBurst:
		if p.BurstRate <= p.Rate {
			return fmt.Errorf("loadgen: phase %q: burst_rate %v must exceed the baseline rate %v",
				p.Name, p.BurstRate, p.Rate)
		}
		if p.BurstMs <= 0 || p.PeriodMs <= p.BurstMs {
			return fmt.Errorf("loadgen: phase %q: need 0 < burst_ms < period_ms, got %d/%d",
				p.Name, p.BurstMs, p.PeriodMs)
		}
	default:
		return fmt.Errorf("loadgen: phase %q: unknown shape %q", p.Name, p.Shape)
	}
	return nil
}

// CorpusSpec sizes the generated workload corpus. Workload sizes vary
// across keys (uniformly in [MinModules, MaxModules]) because the
// optimizer's per-request cost is superlinear in them — uniform-cost load
// tests would miss exactly the tail the harness exists to measure.
type CorpusSpec struct {
	// Keys is the number of distinct workloads.
	Keys int `json:"keys"`
	// MinModules/MaxModules bound each workload's floorplan size.
	MinModules int `json:"min_modules"`
	MaxModules int `json:"max_modules"`
	// Impls is the implementation-list length per module.
	Impls int `json:"impls"`
	// ZipfS/ZipfV shape the popularity distribution: key k (by rank) is
	// drawn with probability proportional to (ZipfV + k)^-ZipfS. ZipfS must
	// be > 1; larger values skew harder. Defaults: 1.2 / 1.
	ZipfS float64 `json:"zipf_s,omitempty"`
	ZipfV float64 `json:"zipf_v,omitempty"`
}

func (c CorpusSpec) zipfS() float64 {
	if c.ZipfS > 1 {
		return c.ZipfS
	}
	return 1.2
}

func (c CorpusSpec) zipfV() float64 {
	if c.ZipfV >= 1 {
		return c.ZipfV
	}
	return 1
}

func (c CorpusSpec) validate() error {
	if c.Keys < 1 {
		return fmt.Errorf("loadgen: corpus needs >= 1 key, got %d", c.Keys)
	}
	if c.MinModules < 1 || c.MaxModules < c.MinModules {
		return fmt.Errorf("loadgen: bad module range [%d, %d]", c.MinModules, c.MaxModules)
	}
	if c.Impls < 1 {
		return fmt.Errorf("loadgen: impls must be >= 1, got %d", c.Impls)
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return fmt.Errorf("loadgen: zipf_s must be > 1, got %v", c.ZipfS)
	}
	return nil
}

// SLO is one declarative assertion over the finished run. Metric names:
// p50_ms, p90_ms, p99_ms, p999_ms, max_ms, mean_ms, error_rate,
// throughput_rps. Phase names address one phase's numbers; empty or
// "total" addresses the whole run. Max bounds the metric from above, Min
// from below; either may be omitted.
type SLO struct {
	Phase  string   `json:"phase,omitempty"`
	Metric string   `json:"metric"`
	Max    *float64 `json:"max,omitempty"`
	Min    *float64 `json:"min,omitempty"`
}

func (s SLO) String() string {
	scope := s.Phase
	if scope == "" {
		scope = "total"
	}
	out := scope + "." + s.Metric
	if s.Max != nil {
		out += fmt.Sprintf(" <= %v", *s.Max)
	}
	if s.Min != nil {
		out += fmt.Sprintf(" >= %v", *s.Min)
	}
	return out
}

func (s SLO) validate() error {
	if s.Metric == "" {
		return fmt.Errorf("loadgen: SLO without a metric")
	}
	if s.Max == nil && s.Min == nil {
		return fmt.Errorf("loadgen: SLO %s bounds nothing (need max and/or min)", s)
	}
	return nil
}

// Spec is the complete declarative description of one load run — the
// document `fpbench -load-spec` reads.
type Spec struct {
	// Seed makes the corpus and the key-popularity draw reproducible.
	Seed int64 `json:"seed"`
	// Connections bounds concurrently outstanding requests (default 64).
	// The schedule never waits for a free connection: when all are busy,
	// jobs queue with their intended times intact, so sender starvation
	// shows up as latency, not as reduced offered load.
	Connections int `json:"connections,omitempty"`
	// QueueDepth bounds jobs waiting for a sender (default 16384); jobs
	// past it are dropped and counted as errors rather than queued without
	// bound against a wedged server.
	QueueDepth int         `json:"queue_depth,omitempty"`
	Corpus     CorpusSpec  `json:"corpus"`
	Phases     []PhaseSpec `json:"phases"`
	SLOs       []SLO       `json:"slos,omitempty"`
	// RequestTimeoutMs caps each request (default 10000).
	RequestTimeoutMs int64 `json:"request_timeout_ms,omitempty"`
	// K1 is the selection limit sent with every request (0 = exact
	// optimization; the paper's K1 bounds per-node R-list size).
	K1 int `json:"k1,omitempty"`
}

func (s Spec) connections() int {
	if s.Connections > 0 {
		return s.Connections
	}
	return 64
}

func (s Spec) queueDepth() int {
	if s.QueueDepth > 0 {
		return s.QueueDepth
	}
	return 16384
}

// RequestTimeout returns the per-request deadline.
func (s Spec) RequestTimeout() time.Duration {
	if s.RequestTimeoutMs > 0 {
		return time.Duration(s.RequestTimeoutMs) * time.Millisecond
	}
	return 10 * time.Second
}

// Validate rejects unusable specs with the first offending field.
func (s Spec) Validate() error {
	if err := s.Corpus.validate(); err != nil {
		return err
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("loadgen: spec has no phases")
	}
	seen := map[string]bool{}
	for _, p := range s.Phases {
		if err := p.validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("loadgen: duplicate phase name %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, a := range s.SLOs {
		if err := a.validate(); err != nil {
			return err
		}
		if a.Phase != "" && a.Phase != TotalPhase && !seen[a.Phase] {
			return fmt.Errorf("loadgen: SLO %s names unknown phase %q", a, a.Phase)
		}
	}
	if s.Connections < 0 || s.QueueDepth < 0 || s.RequestTimeoutMs < 0 {
		return fmt.Errorf("loadgen: negative connections/queue_depth/request_timeout_ms")
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec document.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("loadgen: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// f64 builds the *float64 SLO bounds inline.
func f64(v float64) *float64 { return &v }

// DefaultSpec is the built-in schedule `fpbench -load` runs when no
// -load-spec file is given: a cache-warming constant phase, a ramp, and a
// burst phase, under deliberately generous SLOs — the default run should
// tell you your numbers, not fail your laptop.
func DefaultSpec() Spec {
	return Spec{
		Seed: 1,
		K1:   12,
		Corpus: CorpusSpec{
			Keys:       24,
			MinModules: 6,
			MaxModules: 16,
			Impls:      6,
		},
		Phases: []PhaseSpec{
			{Name: "warmup", DurationMs: 2000, Rate: 20},
			{Name: "ramp", DurationMs: 4000, Shape: ShapeRamp, Rate: 20, EndRate: 150},
			{Name: "burst", DurationMs: 4000, Shape: ShapeBurst, Rate: 40,
				BurstRate: 300, BurstMs: 100, PeriodMs: 500},
		},
		SLOs: []SLO{
			{Metric: "error_rate", Max: f64(0.01)},
			{Phase: "ramp", Metric: "p99_ms", Max: f64(2000)},
			{Phase: "burst", Metric: "p999_ms", Max: f64(5000)},
		},
	}
}
