package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"floorplan/internal/plan"
)

// fastSpec is a sub-second schedule for unit tests: one constant phase.
func fastSpec() Spec {
	return Spec{
		Seed: 3,
		Corpus: CorpusSpec{
			Keys: 8, MinModules: 2, MaxModules: 4, Impls: 2, ZipfS: 1.5,
		},
		Phases: []PhaseSpec{
			{Name: "steady", DurationMs: 200, Rate: 200},
		},
	}
}

func TestSpecValidation(t *testing.T) {
	base := fastSpec()
	cases := []struct {
		name string
		warp func(*Spec)
		want string
	}{
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"unnamed phase", func(s *Spec) { s.Phases[0].Name = "" }, "without a name"},
		{"zero rate", func(s *Spec) { s.Phases[0].Rate = 0 }, "rate must be > 0"},
		{"zero duration", func(s *Spec) { s.Phases[0].DurationMs = 0 }, "duration_ms"},
		{"bad shape", func(s *Spec) { s.Phases[0].Shape = "sawtooth" }, "unknown shape"},
		{"ramp without end", func(s *Spec) { s.Phases[0].Shape = ShapeRamp }, "end_rate"},
		{"burst below base", func(s *Spec) {
			s.Phases[0].Shape = ShapeBurst
			s.Phases[0].BurstRate = 100
			s.Phases[0].BurstMs, s.Phases[0].PeriodMs = 10, 100
		}, "must exceed"},
		{"burst period", func(s *Spec) {
			s.Phases[0].Shape = ShapeBurst
			s.Phases[0].BurstRate = 500
			s.Phases[0].BurstMs, s.Phases[0].PeriodMs = 100, 50
		}, "burst_ms < period_ms"},
		{"duplicate phase", func(s *Spec) {
			s.Phases = append(s.Phases, s.Phases[0])
		}, "duplicate phase"},
		{"no keys", func(s *Spec) { s.Corpus.Keys = 0 }, ">= 1 key"},
		{"module range", func(s *Spec) { s.Corpus.MaxModules = 1 }, "module range"},
		{"shallow zipf", func(s *Spec) { s.Corpus.ZipfS = 0.9 }, "zipf_s"},
		{"SLO without bounds", func(s *Spec) {
			s.SLOs = []SLO{{Metric: "p99_ms"}}
		}, "bounds nothing"},
		{"SLO unknown phase", func(s *Spec) {
			s.SLOs = []SLO{{Phase: "missing", Metric: "p99_ms", Max: f64(1)}}
		}, "unknown phase"},
	}
	for _, tc := range cases {
		s := base
		s.Phases = append([]PhaseSpec(nil), base.Phases...)
		tc.warp(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("DefaultSpec invalid: %v", err)
	}
}

// TestRateSchedule pins the three rate shapes at chosen offsets.
func TestRateSchedule(t *testing.T) {
	constant := PhaseSpec{Name: "c", DurationMs: 1000, Rate: 50}
	for _, off := range []time.Duration{0, 500 * time.Millisecond, 999 * time.Millisecond} {
		if got := constant.rateAt(off); got != 50 {
			t.Errorf("constant rateAt(%v) = %v, want 50", off, got)
		}
	}
	ramp := PhaseSpec{Name: "r", DurationMs: 1000, Rate: 100, EndRate: 300}
	if got := ramp.rateAt(0); got != 100 {
		t.Errorf("ramp rateAt(0) = %v, want 100", got)
	}
	if got := ramp.rateAt(500 * time.Millisecond); got != 200 {
		t.Errorf("ramp rateAt(mid) = %v, want 200", got)
	}
	burst := PhaseSpec{Name: "b", DurationMs: 1000, Rate: 10,
		Shape: ShapeBurst, BurstRate: 500, BurstMs: 100, PeriodMs: 500}
	for off, want := range map[time.Duration]float64{
		0:                      500, // inside first burst window
		50 * time.Millisecond:  500,
		200 * time.Millisecond: 10, // between bursts
		499 * time.Millisecond: 10,
		500 * time.Millisecond: 500, // second burst window
		649 * time.Millisecond: 10,
	} {
		if got := burst.rateAt(off); got != want {
			t.Errorf("burst rateAt(%v) = %v, want %v", off, got, want)
		}
	}
}

// TestRunOpenLoop drives the engine with an instant stub: the offered load
// must match the schedule, every arrival must complete exactly once, and
// the key popularity must be zipf-skewed toward key 0.
func TestRunOpenLoop(t *testing.T) {
	spec := fastSpec()
	var mu sync.Mutex
	keyCounts := map[int]int64{}
	report, err := Run(context.Background(), spec, nil, func(ctx context.Context, w Workload, target int) (string, error) {
		if w.Tree == nil || len(w.Library) == 0 {
			t.Error("workload arrived without tree/library")
		}
		mu.Lock()
		keyCounts[w.Key]++
		mu.Unlock()
		return "miss", nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// 200ms at 200 rps = 40 scheduled arrivals, exactly: the timeline is
	// computed, not measured, so the count is deterministic.
	steady := report.phase("steady")
	if steady == nil {
		t.Fatal("report has no steady phase")
	}
	if steady.Sent != 40 {
		t.Fatalf("sent = %d, want exactly 40 (deterministic schedule)", steady.Sent)
	}
	if steady.Done != steady.Sent || steady.Errors != 0 || steady.Dropped != 0 {
		t.Fatalf("done/errors/dropped = %d/%d/%d, want %d/0/0",
			steady.Done, steady.Errors, steady.Dropped, steady.Sent)
	}
	if steady.Dispositions["miss"] != steady.Done {
		t.Fatalf("dispositions = %v, want all miss", steady.Dispositions)
	}
	if got := steady.ThroughputRPS; got != 200 {
		t.Fatalf("throughput = %v rps, want 200 (40 done / 0.2s)", got)
	}
	total := report.phase(TotalPhase)
	if total == nil || total.Sent != steady.Sent || total.Latency.Hist.Count != steady.Done {
		t.Fatalf("total rollup inconsistent: %+v", total)
	}

	// Key draws are seeded: the zipf skew toward rank 0 is reproducible.
	var maxOther int64
	for k, n := range keyCounts {
		if k != 0 && n > maxOther {
			maxOther = n
		}
	}
	if keyCounts[0] <= maxOther {
		t.Fatalf("zipf skew missing: key 0 drawn %d times, another key %d (counts %v)",
			keyCounts[0], maxOther, keyCounts)
	}
}

// TestRunMultiTarget: arrivals rotate round-robin over the targets by
// intended send time, so every endpoint receives an equal share (±1) of
// the offered load, and the report carries a per-target section whose
// counts agree with what the stub observed.
func TestRunMultiTarget(t *testing.T) {
	spec := fastSpec() // 40 deterministic arrivals
	targets := []string{"http://a", "http://b", "http://c"}
	var mu sync.Mutex
	seen := make([]int64, len(targets))
	report, err := Run(context.Background(), spec, targets, func(ctx context.Context, w Workload, target int) (string, error) {
		if target < 0 || target >= len(targets) {
			t.Errorf("target index %d out of range", target)
			return "", nil
		}
		mu.Lock()
		seen[target]++
		mu.Unlock()
		return "hit", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Targets) != len(targets) {
		t.Fatalf("report has %d target sections, want %d", len(report.Targets), len(targets))
	}
	var sent, lo, hi int64
	lo = 1 << 62
	for i, tr := range report.Targets {
		if tr.Target != targets[i] {
			t.Errorf("target %d labeled %q, want %q", i, tr.Target, targets[i])
		}
		if tr.Done != seen[i] || tr.Errors != 0 || tr.Dropped != 0 {
			t.Errorf("target %s: done/errors/dropped = %d/%d/%d, stub saw %d",
				tr.Target, tr.Done, tr.Errors, tr.Dropped, seen[i])
		}
		if tr.Dispositions["hit"] != tr.Done {
			t.Errorf("target %s dispositions = %v, want all hit", tr.Target, tr.Dispositions)
		}
		sent += tr.Sent
		if tr.Sent < lo {
			lo = tr.Sent
		}
		if tr.Sent > hi {
			hi = tr.Sent
		}
	}
	if sent != 40 {
		t.Fatalf("per-target sent sums to %d, want 40", sent)
	}
	if hi-lo > 1 {
		t.Fatalf("round-robin spread uneven: per-target sent ranges %d..%d", lo, hi)
	}
}

// TestCoordinatedOmission is the harness's core guarantee: with a single
// slow connection, queued arrivals record latency from their *intended*
// send time, so the report shows the latency a real open-loop client
// population would suffer — not the per-request service time a
// closed-loop driver would report.
func TestCoordinatedOmission(t *testing.T) {
	spec := fastSpec()
	spec.Connections = 1
	spec.Phases = []PhaseSpec{{Name: "steady", DurationMs: 200, Rate: 100}} // 20 arrivals
	const service = 20 * time.Millisecond
	report, err := Run(context.Background(), spec, nil, func(ctx context.Context, w Workload, target int) (string, error) {
		time.Sleep(service)
		return "miss", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p := report.phase("steady")
	if p.Done != 20 {
		t.Fatalf("done = %d, want 20", p.Done)
	}
	// Arrivals come every 10ms but drain at 20ms each through one
	// connection, so the backlog grows ~10ms per arrival; the last arrival
	// waits ~200ms beyond its intended time. A closed-loop measurement
	// would report ~20ms for every request.
	if p.Latency.MaxMs < 3*float64(service/time.Millisecond) {
		t.Fatalf("max latency %.1fms does not include schedule backlog (service %.0fms): "+
			"latency is not measured from intended send time", p.Latency.MaxMs,
			float64(service/time.Millisecond))
	}
	if p.Latency.P50Ms >= p.Latency.P999Ms {
		t.Fatalf("latency distribution not spread by backlog: p50 %.1f >= p999 %.1f",
			p.Latency.P50Ms, p.Latency.P999Ms)
	}
}

// TestRunCancellation: cancelling mid-run stops scheduling, drains
// in-flight work, and returns the partial report with the context error.
func TestRunCancellation(t *testing.T) {
	spec := fastSpec()
	spec.Phases = []PhaseSpec{{Name: "steady", DurationMs: 10_000, Rate: 100}}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	report, err := Run(ctx, spec, nil, func(ctx context.Context, w Workload, target int) (string, error) {
		return "hit", nil
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v, schedule did not stop", elapsed)
	}
	p := report.phase("steady")
	if p.Sent == 0 || p.Sent >= 1000 {
		t.Fatalf("partial run sent %d arrivals, want a small non-zero prefix", p.Sent)
	}
}

func TestEvaluateSLOs(t *testing.T) {
	spec := fastSpec()
	report, err := Run(context.Background(), spec, nil, func(ctx context.Context, w Workload, target int) (string, error) {
		return "hit", nil
	})
	if err != nil {
		t.Fatal(err)
	}

	pass := []SLO{
		{Metric: "error_rate", Max: f64(0)},
		{Phase: "steady", Metric: "throughput_rps", Min: f64(100)},
		{Phase: "total", Metric: "p999_ms", Max: f64(60_000)},
	}
	report.Spec.SLOs = pass
	report.Evaluate()
	if !report.Pass {
		t.Fatalf("generous SLOs failed: %+v", report.SLOResults)
	}
	if len(report.SLOResults) != len(pass) {
		t.Fatalf("got %d SLO results, want %d", len(report.SLOResults), len(pass))
	}

	for _, tc := range []struct {
		name string
		slo  SLO
		want string
	}{
		{"max violated", SLO{Metric: "throughput_rps", Max: f64(0.001)}, "> max"},
		{"min violated", SLO{Phase: "steady", Metric: "p50_ms", Min: f64(1e9)}, "< min"},
		{"unknown metric", SLO{Metric: "p42_ms", Max: f64(1)}, "unknown metric"},
		{"unknown phase", SLO{Phase: "ghost", Metric: "p50_ms", Max: f64(1)}, "unknown phase"},
	} {
		report.Spec.SLOs = []SLO{tc.slo}
		report.Evaluate()
		if report.Pass {
			t.Errorf("%s: run passed, want failure", tc.name)
			continue
		}
		if d := report.SLOResults[0].Detail; !strings.Contains(d, tc.want) {
			t.Errorf("%s: detail %q, want %q", tc.name, d, tc.want)
		}
	}

	// A detected server restart fails the gate even with no SLOs at all.
	report.Spec.SLOs = nil
	report.Server = &StatsDelta{Restarted: true}
	report.Evaluate()
	if report.Pass {
		t.Fatal("run with a mid-run server restart passed")
	}
}

// TestReportRoundTrip: the JSON document survives encode/decode with
// schema checking, and quantiles are still answerable from the decoded
// histogram snapshot.
func TestReportRoundTrip(t *testing.T) {
	spec := fastSpec()
	report, err := Run(context.Background(), spec, nil, func(ctx context.Context, w Workload, target int) (string, error) {
		return "hit", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	report.Evaluate()
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	orig := report.phase(TotalPhase)
	got := back.phase(TotalPhase)
	if got.Latency.Hist.Quantile(0.99) != orig.Latency.Hist.Quantile(0.99) {
		t.Fatal("decoded snapshot answers a different p99")
	}
	if _, err := ParseReport([]byte(`{"schema":"floorplan/other/v9"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// TestBuildCorpusDeterministic: same spec and seed yield byte-identical
// workloads; module counts respect the configured range.
func TestBuildCorpusDeterministic(t *testing.T) {
	c := CorpusSpec{Keys: 6, MinModules: 3, MaxModules: 9, Impls: 3}
	a, err := BuildCorpus(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCorpus(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ta, err := plan.EncodeTree(a[i].Tree)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := plan.EncodeTree(b[i].Tree)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ta, tb) {
			t.Fatalf("key %d: trees differ across identically-seeded builds", i)
		}
		if a[i].Modules < c.MinModules || a[i].Modules > c.MaxModules {
			t.Fatalf("key %d: %d modules outside [%d, %d]",
				i, a[i].Modules, c.MinModules, c.MaxModules)
		}
		if len(a[i].Library) != a[i].Modules {
			t.Fatalf("key %d: library has %d modules, tree %d",
				i, len(a[i].Library), a[i].Modules)
		}
		for name, impls := range a[i].Library {
			if len(impls) < 1 || len(impls) > c.Impls {
				t.Fatalf("key %d module %s: %d impls, want 1..%d", i, name, len(impls), c.Impls)
			}
		}
	}
	other, err := BuildCorpus(c, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		ta, _ := plan.EncodeTree(a[i].Tree)
		tb, _ := plan.EncodeTree(other[i].Tree)
		if !bytes.Equal(ta, tb) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical corpus")
	}
}
