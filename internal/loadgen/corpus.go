package loadgen

import (
	"fmt"
	"math/rand"

	"floorplan/internal/gen"
	"floorplan/internal/plan"
)

// Workload is one distinct request body the harness can send: a floorplan
// tree plus its implementation library. Key is the workload's index in the
// corpus (also its zipf popularity rank: key 0 is the hottest).
type Workload struct {
	Key     int
	Modules int
	Tree    *plan.Node
	Library plan.Library
}

// BuildCorpus generates the workload corpus for a spec deterministically
// from its seed: c.Keys floorplans whose module counts are drawn uniformly
// from [MinModules, MaxModules], each with an N=c.Impls implementation
// library. The same (spec, seed) always yields byte-identical workloads,
// so cache-hit behavior is reproducible across runs and across a server
// restart.
func BuildCorpus(c CorpusSpec, seed int64) ([]Workload, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	corpus := make([]Workload, 0, c.Keys)
	for key := 0; key < c.Keys; key++ {
		modules := c.MinModules + rng.Intn(c.MaxModules-c.MinModules+1)
		// pWheel 0.25 mixes slicing and wheel (L-shaped) structure so the
		// served corpus exercises both optimizer paths.
		tree, err := gen.RandomTree(rng, modules, 0.25)
		if err != nil {
			return nil, fmt.Errorf("loadgen: corpus key %d: %w", key, err)
		}
		rlists, err := gen.Library(rng, tree, gen.DefaultModuleParams(c.Impls))
		if err != nil {
			return nil, fmt.Errorf("loadgen: corpus key %d: %w", key, err)
		}
		lib := make(plan.Library, len(rlists))
		for name, rl := range rlists {
			lib[name] = rl
		}
		corpus = append(corpus, Workload{Key: key, Modules: modules, Tree: tree, Library: lib})
	}
	return corpus, nil
}
