package loadgen

import (
	"encoding/json"
	"fmt"
	"time"

	"floorplan/internal/telemetry"
)

// ReportSchema identifies the load-report JSON document.
const ReportSchema = "floorplan/load-report/v1"

// TotalPhase is the phase name addressing the whole run in SLOs and in
// the report's phase list.
const TotalPhase = "total"

// Latency summarizes one latency distribution in milliseconds, derived
// from the underlying log-linear histogram snapshot (which rides along so
// downstream tooling can re-derive any quantile or merge runs).
type Latency struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`

	Hist telemetry.HistSnapshot `json:"hist"`
}

// latencyFrom converts a nanosecond histogram snapshot to the report form.
func latencyFrom(s telemetry.HistSnapshot) Latency {
	toMs := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
	l := Latency{
		P50Ms:  toMs(s.Quantile(0.50)),
		P90Ms:  toMs(s.Quantile(0.90)),
		P99Ms:  toMs(s.Quantile(0.99)),
		P999Ms: toMs(s.Quantile(0.999)),
		MaxMs:  toMs(s.Max),
		Hist:   s,
	}
	if s.Count > 0 {
		l.MeanMs = toMs(s.Sum / s.Count)
	}
	return l
}

// PhaseReport is one phase's (or the whole run's) measured outcome.
type PhaseReport struct {
	Name       string `json:"name"`
	DurationMs int64  `json:"duration_ms"`
	// Sent counts scheduled arrivals (offered load); Done counts completed
	// requests; Errors counts completions that failed; Dropped counts
	// arrivals discarded because the sender queue was full. In a healthy
	// run Sent == Done and Errors == Dropped == 0.
	Sent    int64 `json:"sent"`
	Done    int64 `json:"done"`
	Errors  int64 `json:"errors"`
	Dropped int64 `json:"dropped"`
	// ThroughputRPS is completed requests per second of scheduled phase
	// time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Dispositions counts completions by server disposition ("hit",
	// "miss", "coalesced", ..., "error").
	Dispositions map[string]int64 `json:"dispositions,omitempty"`
	Latency      Latency          `json:"latency"`
}

// metric resolves an SLO metric name against this phase's numbers.
func (p PhaseReport) metric(name string) (float64, error) {
	switch name {
	case "p50_ms":
		return p.Latency.P50Ms, nil
	case "p90_ms":
		return p.Latency.P90Ms, nil
	case "p99_ms":
		return p.Latency.P99Ms, nil
	case "p999_ms":
		return p.Latency.P999Ms, nil
	case "max_ms":
		return p.Latency.MaxMs, nil
	case "mean_ms":
		return p.Latency.MeanMs, nil
	case "error_rate":
		if p.Sent == 0 {
			return 0, nil
		}
		// Dropped arrivals never completed; they are failures of the run
		// just as much as explicit errors.
		return float64(p.Errors+p.Dropped) / float64(p.Sent), nil
	case "throughput_rps":
		return p.ThroughputRPS, nil
	default:
		return 0, fmt.Errorf("unknown metric %q", name)
	}
}

// TargetReport is one endpoint's share of a multi-target run: what the
// round-robin rotation sent it and how it answered. Latency is not split
// per target — the histogram already aggregates the run, and a per-node
// tail question is better answered by the node's own /debug/slow.
type TargetReport struct {
	Target  string `json:"target"`
	Sent    int64  `json:"sent"`
	Done    int64  `json:"done"`
	Errors  int64  `json:"errors"`
	Dropped int64  `json:"dropped"`
	// Dispositions counts completions by server disposition as this target
	// reported them ("hit", "forwarded", "peer_fallback", ...).
	Dispositions map[string]int64 `json:"dispositions,omitempty"`
}

// SLOResult is one evaluated assertion.
type SLOResult struct {
	SLO
	// Value is the measured metric (absent when the SLO itself was
	// unresolvable).
	Value float64 `json:"value"`
	OK    bool    `json:"ok"`
	// Detail explains a failure ("p99_ms 812.5 > max 500").
	Detail string `json:"detail,omitempty"`
}

// StatsDelta carries the server-side counter movement across the run,
// computed by the driver from /v1/stats before and after. It attributes
// the load to dispositions as the *server* counted them — the
// cross-check against the client-observed disposition counts — and
// detects a server restart mid-run (which would silently zero counters
// and invalidate the deltas).
type StatsDelta struct {
	Requests    int64 `json:"requests"`
	Shed        int64 `json:"shed"`
	Coalesced   int64 `json:"coalesced"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	TimedOut    int64 `json:"timed_out"`
	// Computed counts optimizer runs actually executed; in a multi-node run
	// it is the sum across nodes — the cluster-wide dedup number.
	Computed int64 `json:"computed"`
	// Forwarded and PeerFallback aggregate the cluster tier's hop counters
	// across nodes (zero single-node).
	Forwarded     int64   `json:"forwarded,omitempty"`
	PeerFallback  int64   `json:"peer_fallback"`
	Restarted     bool    `json:"restarted"`
	UptimeSeconds float64 `json:"uptime_s"`
	// Nodes carries the per-node deltas behind the sums above (multi-node
	// runs only).
	Nodes []NodeStatsDelta `json:"nodes,omitempty"`
}

// NodeStatsDelta is one node's share of a multi-node stats delta.
type NodeStatsDelta struct {
	// Target is the endpoint URL polled; NodeID the server's own label.
	Target       string `json:"target"`
	NodeID       string `json:"node_id,omitempty"`
	Requests     int64  `json:"requests"`
	Computed     int64  `json:"computed"`
	Coalesced    int64  `json:"coalesced"`
	CacheHits    int64  `json:"cache_hits"`
	Forwarded    int64  `json:"forwarded"`
	PeerFallback int64  `json:"peer_fallback"`
	Restarted    bool   `json:"restarted"`
}

// Report is the load run's full JSON output.
type Report struct {
	Schema string `json:"schema"`
	Spec   Spec   `json:"spec"`
	// WallMs is the actual wall-clock duration of the run (scheduled
	// duration plus however long the tail of in-flight requests took).
	WallMs int64 `json:"wall_ms"`
	// Phases lists each scheduled phase followed by the "total" rollup.
	Phases []PhaseReport `json:"phases"`
	// Targets splits the run per endpoint when more than one target was
	// driven (cluster runs); absent otherwise.
	Targets []TargetReport `json:"targets,omitempty"`
	// Server is the /v1/stats delta, when the driver captured one.
	Server *StatsDelta `json:"server,omitempty"`
	// SLOResults and Pass are filled by Evaluate.
	SLOResults []SLOResult `json:"slo_results,omitempty"`
	Pass       bool        `json:"pass"`
}

// buildReport rolls the per-phase accumulators into the report, including
// the "total" rollup phase whose histogram is the merge of every phase's
// (exactly equal to one histogram observing the union stream, by the
// telemetry merge guarantee).
func buildReport(spec Spec, accums []*phaseAccum, taccums []*targetAccum, wall time.Duration) *Report {
	r := &Report{Schema: ReportSchema, Spec: spec, WallMs: wall.Milliseconds()}
	var total PhaseReport
	total.Name = TotalPhase
	total.Dispositions = map[string]int64{}
	var totalHist telemetry.HistSnapshot
	for _, acc := range accums {
		snap := acc.hist.Snapshot()
		p := PhaseReport{
			Name:         acc.spec.Name,
			DurationMs:   acc.spec.DurationMs,
			Sent:         acc.sent.Load(),
			Done:         acc.done.Load(),
			Errors:       acc.errs.Load(),
			Dropped:      acc.dropped.Load(),
			Dispositions: acc.dispositions,
			Latency:      latencyFrom(snap),
		}
		if p.DurationMs > 0 {
			p.ThroughputRPS = float64(p.Done) / (float64(p.DurationMs) / 1000)
		}
		total.DurationMs += p.DurationMs
		total.Sent += p.Sent
		total.Done += p.Done
		total.Errors += p.Errors
		total.Dropped += p.Dropped
		for k, v := range p.Dispositions {
			total.Dispositions[k] += v
		}
		totalHist.Merge(snap)
		r.Phases = append(r.Phases, p)
	}
	if total.DurationMs > 0 {
		total.ThroughputRPS = float64(total.Done) / (float64(total.DurationMs) / 1000)
	}
	total.Latency = latencyFrom(totalHist)
	r.Phases = append(r.Phases, total)
	for _, t := range taccums {
		r.Targets = append(r.Targets, TargetReport{
			Target:       t.name,
			Sent:         t.sent.Load(),
			Done:         t.done.Load(),
			Errors:       t.errs.Load(),
			Dropped:      t.dropped.Load(),
			Dispositions: t.dispositions,
		})
	}
	return r
}

// phase finds a phase report by SLO scope name ("" and "total" address
// the rollup).
func (r *Report) phase(name string) *PhaseReport {
	if name == "" {
		name = TotalPhase
	}
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// Evaluate checks every SLO in the spec against the measured numbers and
// fills SLOResults and Pass. Unresolvable assertions (unknown phase or
// metric) fail closed, as does a detected server restart: a gate that
// cannot measure what it promised to gate on must not report green.
func (r *Report) Evaluate() {
	r.Pass = true
	r.SLOResults = r.SLOResults[:0]
	for _, s := range r.Spec.SLOs {
		res := SLOResult{SLO: s, OK: true}
		p := r.phase(s.Phase)
		if p == nil {
			res.OK = false
			res.Detail = fmt.Sprintf("unknown phase %q", s.Phase)
		} else if v, err := p.metric(s.Metric); err != nil {
			res.OK = false
			res.Detail = err.Error()
		} else {
			res.Value = v
			if s.Max != nil && v > *s.Max {
				res.OK = false
				res.Detail = fmt.Sprintf("%s %.4g > max %.4g", s.Metric, v, *s.Max)
			}
			if s.Min != nil && v < *s.Min {
				res.OK = false
				res.Detail = fmt.Sprintf("%s %.4g < min %.4g", s.Metric, v, *s.Min)
			}
		}
		if !res.OK {
			r.Pass = false
		}
		r.SLOResults = append(r.SLOResults, res)
	}
	if r.Server != nil && r.Server.Restarted {
		r.Pass = false
		r.SLOResults = append(r.SLOResults, SLOResult{
			SLO:    SLO{Metric: "server_stable"},
			OK:     false,
			Detail: "server restarted mid-run; /v1/stats deltas are invalid",
		})
	}
}

// ParseReport decodes a load report and checks its schema tag, the gate
// scripts use to reject stale or foreign documents.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: decoding report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("loadgen: report schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}
