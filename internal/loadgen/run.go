package loadgen

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"floorplan/internal/telemetry"
)

// SendFunc executes one request for the workload with the given corpus
// key against the target'th configured endpoint, and reports the server's
// disposition label (e.g. "hit", "miss", "coalesced"; "" is recorded as
// "unknown"). A non-nil error counts as a failed request; the returned
// disposition still labels it ("shed", "timeout"), falling back to "error"
// when empty. target indexes the Run targets list (always 0 single-target).
//
// The callback keeps the engine transport-agnostic: fpbench wires it to a
// floorplan.Client per target, tests wire it to a stub.
type SendFunc func(ctx context.Context, w Workload, target int) (disposition string, err error)

// job is one scheduled arrival: which phase it belongs to, when the
// schedule intended it to leave, which workload it carries and which
// target it goes to.
type job struct {
	acc      *phaseAccum
	tacc     *targetAccum
	intended time.Time
	workload Workload
	target   int
}

// phaseAccum accumulates one phase's results. The latency histogram and
// the counters are updated concurrently by the sender pool; the
// disposition map takes the one mutex on the completion path (cheap next
// to a network round-trip).
type phaseAccum struct {
	spec PhaseSpec

	hist    telemetry.Histogram // latency from intended send time, ns
	sent    atomic.Int64
	done    atomic.Int64
	errs    atomic.Int64
	dropped atomic.Int64

	mu           sync.Mutex
	dispositions map[string]int64
}

// finish records one completed request.
func (p *phaseAccum) finish(disposition string, err error, latency time.Duration) {
	p.hist.Observe(int64(latency))
	p.done.Add(1)
	if err != nil {
		p.errs.Add(1)
		// Keep the callback's classification when it supplied one ("shed",
		// "timeout"), so failure modes stay distinguishable in the report.
		if disposition == "" {
			disposition = "error"
		}
	} else if disposition == "" {
		disposition = "unknown"
	}
	p.mu.Lock()
	p.dispositions[disposition]++
	p.mu.Unlock()
}

// targetAccum accumulates one target's results across every phase, so a
// multi-node run can say per node what it sent and how the node answered.
type targetAccum struct {
	name string

	sent    atomic.Int64
	done    atomic.Int64
	errs    atomic.Int64
	dropped atomic.Int64

	mu           sync.Mutex
	dispositions map[string]int64
}

func (t *targetAccum) finish(disposition string, err error) {
	if t == nil {
		return
	}
	t.done.Add(1)
	if err != nil {
		t.errs.Add(1)
		if disposition == "" {
			disposition = "error"
		}
	} else if disposition == "" {
		disposition = "unknown"
	}
	t.mu.Lock()
	t.dispositions[disposition]++
	t.mu.Unlock()
}

// Run executes the spec's schedule against send and returns the report.
//
// The scheduler walks the intended timeline phase by phase: each arrival's
// intended time is start + phase offset, computed purely from the rate
// function and never re-anchored to "now". When the process falls behind
// (senders all busy, GC pause, slow server), subsequent arrivals fire
// immediately but keep their original intended times, so their recorded
// latency includes the time they spent waiting to be sent. That is the
// coordinated-omission guarantee: offered load is what the spec says, and
// queueing delay anywhere — client or server — lands in the histogram.
//
// Cancelling ctx stops scheduling new arrivals, lets in-flight requests
// finish, and returns the partial report with ctx's error.
//
// targets names the endpoints the run spreads over: arrivals rotate
// round-robin by intended send time (arrival i goes to target i mod n), so
// every node of a cluster sees the same offered rate and the same key
// skew. Empty or single-element targets degenerate to the single-endpoint
// run (every send gets target 0); the report carries a per-target section
// only when more than one target is named.
func Run(ctx context.Context, spec Spec, targets []string, send SendFunc) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	corpus, err := BuildCorpus(spec.Corpus, spec.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, spec.Corpus.zipfS(), spec.Corpus.zipfV(), uint64(len(corpus)-1))

	accums := make([]*phaseAccum, len(spec.Phases))
	for i, p := range spec.Phases {
		accums[i] = &phaseAccum{spec: p, dispositions: map[string]int64{}}
	}
	var taccums []*targetAccum
	if len(targets) > 1 {
		taccums = make([]*targetAccum, len(targets))
		for i, t := range targets {
			taccums[i] = &targetAccum{name: t, dispositions: map[string]int64{}}
		}
	}

	jobs := make(chan job, spec.queueDepth())
	var senders sync.WaitGroup
	for i := 0; i < spec.connections(); i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for j := range jobs {
				reqCtx, cancel := context.WithTimeout(ctx, spec.RequestTimeout())
				disposition, err := send(reqCtx, j.workload, j.target)
				cancel()
				j.acc.finish(disposition, err, time.Since(j.intended))
				j.tacc.finish(disposition, err)
			}
		}()
	}

	nTargets := len(targets)
	if nTargets == 0 {
		nTargets = 1
	}
	start := time.Now()
	phaseStart := start
	seq := 0 // arrival counter across phases, for the round-robin rotation
schedule:
	for _, acc := range accums {
		dur := acc.spec.duration()
		for off := time.Duration(0); off < dur; {
			intended := phaseStart.Add(off)
			if wait := time.Until(intended); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					break schedule
				}
			} else if ctx.Err() != nil {
				break schedule
			}
			target := seq % nTargets
			seq++
			acc.sent.Add(1)
			j := job{acc: acc, intended: intended, workload: corpus[int(zipf.Uint64())], target: target}
			if taccums != nil {
				j.tacc = taccums[target]
				j.tacc.sent.Add(1)
			}
			select {
			case jobs <- j:
			default:
				// The bounded queue is full: the run is hopelessly behind
				// schedule. Count the drop instead of queueing without bound;
				// dropped arrivals fail the error_rate SLO.
				acc.dropped.Add(1)
				if j.tacc != nil {
					j.tacc.dropped.Add(1)
				}
			}
			// Advance the intended timeline by the instantaneous interval.
			off += time.Duration(float64(time.Second) / acc.spec.rateAt(off))
		}
		phaseStart = phaseStart.Add(dur)
	}
	close(jobs)
	senders.Wait()
	wall := time.Since(start)

	report := buildReport(spec, accums, taccums, wall)
	return report, ctx.Err()
}
