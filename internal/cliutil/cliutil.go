// Package cliutil holds the flag plumbing shared by the command-line tools
// (fpopt, fpbench, fpgen, fpserve): one definition of the telemetry flags
// -report, -trace, -debug-addr, -log-level and -log-format, one way to
// build the collector and structured logger they imply, and one flush path
// that applies the ParseReport round-trip gate to every report any tool
// writes — so the schema check cannot drift between binaries.
package cliutil

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"

	"floorplan/internal/slogx"
	"floorplan/internal/telemetry"
)

// TelemetryFlags are the shared observability flags. Register wires them
// into a FlagSet; after parsing, Collector/Logger/StartDebug/Flush consume
// them.
type TelemetryFlags struct {
	Report    string
	Trace     string
	Debug     string
	LogLevel  string
	LogFormat string
}

// Register defines the flags on fs (typically flag.CommandLine).
func (f *TelemetryFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Report, "report", "", "write the telemetry run report (JSON) to this file")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace_event file (Perfetto-loadable) to this file")
	fs.StringVar(&f.Debug, "debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.LogLevel, "log-level", "info", "structured log level: debug, info, warn or error")
	fs.StringVar(&f.LogFormat, "log-format", "json", "structured log format: json or text")
}

// Logger builds the tool's structured logger on stderr from -log-level and
// -log-format and installs it as the slog default, so library code logging
// through slog.Default lands in the same stream.
func (f *TelemetryFlags) Logger() (*slog.Logger, error) {
	logger, err := slogx.New(os.Stderr, f.LogLevel, f.LogFormat)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(logger)
	return logger, nil
}

// Enabled reports whether any telemetry output was requested.
func (f *TelemetryFlags) Enabled() bool {
	return f.Report != "" || f.Trace != "" || f.Debug != ""
}

// Collector returns a fresh collector when any flag requests telemetry and
// nil (the zero-overhead disabled state) otherwise.
func (f *TelemetryFlags) Collector() *telemetry.Collector {
	return f.CollectorIf(false)
}

// CollectorIf is Collector with an extra reason to collect — fpbench's
// -benchjson embeds per-table reports even when no telemetry flag is set.
func (f *TelemetryFlags) CollectorIf(force bool) *telemetry.Collector {
	if force || f.Enabled() {
		return telemetry.New()
	}
	return nil
}

// StartDebug starts the expvar/pprof listener when -debug-addr was given
// and logs the bound address through the caller's log prefix.
func (f *TelemetryFlags) StartDebug(col *telemetry.Collector) error {
	if f.Debug == "" {
		return nil
	}
	_, addr, err := telemetry.StartDebugServer(f.Debug, col)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	log.Printf("debug listener on http://%s/debug/vars", addr)
	return nil
}

// Flush writes the requested report and trace files. Every written report
// is immediately re-read and re-parsed — a report that does not round-trip
// (schema drift, marshalling bug) fails the invoking tool, not a
// downstream consumer. A nil collector flushes nothing.
func (f *TelemetryFlags) Flush(col *telemetry.Collector) error {
	if col == nil {
		return nil
	}
	if f.Report != "" {
		raw, err := col.Report().JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(f.Report, raw, 0o644); err != nil {
			return err
		}
		back, err := os.ReadFile(f.Report)
		if err != nil {
			return err
		}
		if _, err := telemetry.ParseReport(back); err != nil {
			return fmt.Errorf("report round-trip failed: %w", err)
		}
	}
	if f.Trace != "" {
		out, err := os.Create(f.Trace)
		if err != nil {
			return err
		}
		if err := col.WriteTrace(out); err != nil {
			out.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := out.Close(); err != nil {
			return err
		}
	}
	return nil
}
