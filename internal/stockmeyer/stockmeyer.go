// Package stockmeyer implements the classic baseline the paper's line of
// work descends from: Stockmeyer's optimal orientation / shape algorithm
// for slicing floorplans (reference [8], Information and Control 1983).
//
// A slicing floorplan is one obtainable by recursive horizontal and
// vertical cuts only — no wheels, hence no L-shaped blocks. For such trees
// the bottom-up combination needs only the linear two-pointer merge of
// R-lists, and every node's list length is bounded by the sum of its
// leaves' list lengths, so the whole optimization is low-polynomial.
//
// The package serves three purposes in this repository:
//
//   - it is the baseline algorithm for slicing inputs in the benchmark
//     harness;
//   - it provides an independent implementation to cross-check the general
//     optimizer on slicing trees;
//   - it demonstrates the paper's claim (Section 6) that R_Selection plugs
//     into other floorplan optimizers: Options.K1 applies the same optimal
//     staircase pruning at every node.
package stockmeyer

import (
	"fmt"

	"floorplan/internal/combine"
	"floorplan/internal/plan"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
)

// Module is a basic block for the classic orientation problem: a fixed
// rectangle that may optionally be rotated by 90 degrees.
type Module struct {
	W, H      int64
	Rotatable bool
}

// Implementations returns the module's irreducible R-list: the module
// itself, plus its rotation when allowed and not redundant.
func (m Module) Implementations() (shape.RList, error) {
	if m.W <= 0 || m.H <= 0 {
		return nil, fmt.Errorf("stockmeyer: module %dx%d invalid", m.W, m.H)
	}
	impls := []shape.RImpl{{W: m.W, H: m.H}}
	if m.Rotatable {
		impls = append(impls, shape.RImpl{W: m.H, H: m.W})
	}
	return shape.NewRList(impls)
}

// Options configures a run. The zero value is the plain Stockmeyer
// algorithm.
type Options struct {
	// K1, when positive, applies R_Selection with this limit to every
	// node's list, demonstrating the paper's technique on a slicing
	// optimizer.
	K1 int
}

// Result is the outcome of Optimize.
type Result struct {
	// Best is the minimum-area implementation of the whole floorplan.
	Best shape.RImpl
	// RootList is the root's full (or selected) implementation list.
	RootList shape.RList
	// PeakStored counts implementations stored across all nodes, the
	// analogue of the paper's M.
	PeakStored int64
	// RSelections counts selection invocations.
	RSelections int
}

// Optimize runs the algorithm over a slicing floorplan tree. Trees
// containing wheels are rejected — use the general optimizer for those.
func Optimize(tree *plan.Node, lib map[string]shape.RList, opts Options) (*Result, error) {
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	if tree.WheelCount() > 0 {
		return nil, fmt.Errorf("stockmeyer: tree contains %d wheels; only slicing floorplans are supported", tree.WheelCount())
	}
	if opts.K1 < 0 || opts.K1 == 1 {
		return nil, fmt.Errorf("stockmeyer: K1 must be 0 (off) or >= 2, got %d", opts.K1)
	}
	res := &Result{}
	root, err := res.eval(tree, lib, opts)
	if err != nil {
		return nil, err
	}
	if len(root) == 0 {
		return nil, fmt.Errorf("stockmeyer: empty root list")
	}
	best, _ := root.Best()
	res.Best = best
	res.RootList = root
	return res, nil
}

func (r *Result) eval(n *plan.Node, lib map[string]shape.RList, opts Options) (shape.RList, error) {
	var list shape.RList
	switch n.Kind {
	case plan.Leaf:
		l, ok := lib[n.Module]
		if !ok {
			return nil, fmt.Errorf("stockmeyer: module %q not in library", n.Module)
		}
		if err := l.Validate(); err != nil {
			return nil, fmt.Errorf("stockmeyer: module %q: %w", n.Module, err)
		}
		if len(l) == 0 {
			return nil, fmt.Errorf("stockmeyer: module %q has no implementations", n.Module)
		}
		list = l
	case plan.HSlice, plan.VSlice:
		// Fold the children through structure-of-arrays accumulators: the
		// ping-pong pair is reused across the whole fold, so an m-way slice
		// costs two growing column buffers instead of m-1 exact-size list
		// allocations, and the merge loop streams over int64 columns. The
		// buffers are per-node locals because the recursive child
		// evaluations below would otherwise clobber a shared scratch.
		first, err := r.eval(n.Children[0], lib, opts)
		if err != nil {
			return nil, err
		}
		vertical := n.Kind == plan.VSlice
		var acc, dst, operand shape.RCols
		acc.SetList(first)
		for _, c := range n.Children[1:] {
			next, err := r.eval(c, lib, opts)
			if err != nil {
				return nil, err
			}
			operand.SetList(next)
			combine.MergeCols(&dst, &acc, &operand, vertical)
			acc, dst = dst, acc
		}
		list = acc.RList()
	default:
		return nil, fmt.Errorf("stockmeyer: unsupported node kind %v", n.Kind)
	}
	if opts.K1 > 0 && len(list) > opts.K1 {
		sel, err := selection.RSelect(list, opts.K1)
		if err != nil {
			return nil, err
		}
		list = sel.Selected
		r.RSelections++
	}
	r.PeakStored += int64(len(list))
	return list, nil
}

// OrientationLibrary builds a library from named modules for the classic
// orientation problem.
func OrientationLibrary(modules map[string]Module) (map[string]shape.RList, error) {
	lib := make(map[string]shape.RList, len(modules))
	for name, m := range modules {
		l, err := m.Implementations()
		if err != nil {
			return nil, fmt.Errorf("stockmeyer: module %q: %w", name, err)
		}
		lib[name] = l
	}
	return lib, nil
}
