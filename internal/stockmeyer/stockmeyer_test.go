package stockmeyer

import (
	"math/rand"
	"testing"

	"floorplan/internal/gen"
	"floorplan/internal/optimizer"
	"floorplan/internal/plan"
	"floorplan/internal/shape"
)

func TestModuleImplementations(t *testing.T) {
	l, err := Module{W: 4, H: 2, Rotatable: true}.Implementations()
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 {
		t.Fatalf("rotatable 4x2 should have 2 implementations, got %v", l)
	}
	// A square's rotation is redundant.
	l, err = Module{W: 3, H: 3, Rotatable: true}.Implementations()
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 1 {
		t.Fatalf("square should have 1 implementation, got %v", l)
	}
	l, err = Module{W: 4, H: 2}.Implementations()
	if err != nil || len(l) != 1 {
		t.Fatalf("fixed module: %v %v", l, err)
	}
	if _, err := (Module{W: 0, H: 2}).Implementations(); err == nil {
		t.Error("invalid module accepted")
	}
}

// TestClassicOrientation reproduces the textbook instance: two rotatable
// dominoes stacked vertically pack into a 4x2 or 2x4 envelope with zero
// waste when oriented consistently.
func TestClassicOrientation(t *testing.T) {
	lib, err := OrientationLibrary(map[string]Module{
		"a": {W: 4, H: 1, Rotatable: true},
		"b": {W: 4, H: 1, Rotatable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := plan.NewHSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	res, err := Optimize(tree, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Area() != 8 {
		t.Fatalf("Best = %v, want area 8", res.Best)
	}
	// Both 4x2 (side by side rotated... stacked flat) and 2x4 are optimal
	// corners of the root staircase.
	if len(res.RootList) < 2 {
		t.Fatalf("RootList = %v", res.RootList)
	}
}

func TestRejectsWheels(t *testing.T) {
	tree := plan.NewWheel(plan.NewLeaf("1"), plan.NewLeaf("2"), plan.NewLeaf("3"), plan.NewLeaf("4"), plan.NewLeaf("5"))
	if _, err := Optimize(tree, nil, Options{}); err == nil {
		t.Error("wheel tree accepted")
	}
}

func TestRejectsBadInputs(t *testing.T) {
	tree := plan.NewHSlice(plan.NewLeaf("a"), plan.NewLeaf("b"))
	if _, err := Optimize(tree, map[string]shape.RList{"a": {{W: 1, H: 1}}}, Options{}); err == nil {
		t.Error("missing module accepted")
	}
	lib := map[string]shape.RList{"a": {{W: 1, H: 1}}, "b": {{W: 1, H: 1}}}
	if _, err := Optimize(tree, lib, Options{K1: 1}); err == nil {
		t.Error("K1=1 accepted")
	}
	if _, err := Optimize(tree, lib, Options{K1: -3}); err == nil {
		t.Error("negative K1 accepted")
	}
	if _, err := Optimize(&plan.Node{Kind: plan.Leaf}, lib, Options{}); err == nil {
		t.Error("invalid tree accepted")
	}
}

// TestMatchesGeneralOptimizer cross-checks the two independent
// implementations on random slicing trees.
func TestMatchesGeneralOptimizer(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		tree, err := gen.RandomTree(rng, 2+rng.Intn(20), 0) // pWheel = 0: slicing only
		if err != nil {
			t.Fatal(err)
		}
		lib, err := gen.Library(rng, tree, gen.DefaultModuleParams(1+rng.Intn(6)))
		if err != nil {
			t.Fatal(err)
		}
		sm, err := Optimize(tree, lib, Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := optimizer.New(optimizer.Library(lib), optimizer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run(tree)
		if err != nil {
			t.Fatal(err)
		}
		if sm.Best.Area() != res.Best.Area() {
			t.Fatalf("stockmeyer %v vs optimizer %v", sm.Best, res.Best)
		}
		if !sm.RootList.Equal(res.RootList) {
			t.Fatalf("root lists differ:\n%v\n%v", sm.RootList, res.RootList)
		}
	}
}

// TestSelectionHook checks the paper's Section 6 claim on this second
// optimizer: R_Selection reduces storage at bounded area cost.
func TestSelectionHook(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		tree, err := gen.RandomTree(rng, 30, 0)
		if err != nil {
			t.Fatal(err)
		}
		lib, err := gen.Library(rng, tree, gen.DefaultModuleParams(8))
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Optimize(tree, lib, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := Optimize(tree, lib, Options{K1: 6})
		if err != nil {
			t.Fatal(err)
		}
		if pruned.RSelections == 0 {
			t.Fatal("selection never triggered")
		}
		if pruned.PeakStored >= exact.PeakStored {
			t.Fatalf("selection did not reduce storage: %d vs %d", pruned.PeakStored, exact.PeakStored)
		}
		if pruned.Best.Area() < exact.Best.Area() {
			t.Fatalf("selection improved the optimum: impossible")
		}
		loss := float64(pruned.Best.Area()-exact.Best.Area()) / float64(exact.Best.Area())
		if loss > 0.25 {
			t.Fatalf("area loss %.1f%% implausibly large", 100*loss)
		}
	}
}

func TestDeepSliceChain(t *testing.T) {
	// A 100-leaf comb: exercises the fold and linear merges.
	rng := rand.New(rand.NewSource(73))
	leaves := make([]*plan.Node, 100)
	lib := make(map[string]shape.RList)
	for i := range leaves {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		leaves[i] = plan.NewLeaf(name)
		ml, err := gen.Module(rng, gen.DefaultModuleParams(3))
		if err != nil {
			t.Fatal(err)
		}
		lib[name] = ml
	}
	tree := plan.NewVSlice(leaves...)
	res, err := Optimize(tree, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Width of every root implementation is the sum of some choice per
	// module; sanity: at least the sum of minimal widths.
	var minW int64
	for _, l := range lib {
		w := l[len(l)-1].W // narrowest
		minW += w
	}
	for _, r := range res.RootList {
		if r.W < minW {
			t.Fatalf("root width %d below lower bound %d", r.W, minW)
		}
	}
}
