// Package gen generates the workloads of the paper's experiments: module
// implementation libraries with a given number N of non-redundant
// implementations per module, the four test floorplans FP1–FP4 of Figure 8,
// and random floorplan trees for fuzzing.
//
// Everything is seeded and deterministic: the paper's "test case #i" maps
// to seed i.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"floorplan/internal/plan"
	"floorplan/internal/shape"
)

// ModuleParams controls module implementation generation.
type ModuleParams struct {
	// N is the number of non-redundant implementations per module.
	N int
	// MinArea and MaxArea bound the module's nominal area; each module
	// draws one nominal area and its implementations trade width for
	// height around it.
	MinArea, MaxArea int64
	// MaxAspect bounds the aspect ratio of the extreme implementations
	// (width/height of the widest, height/width of the tallest).
	MaxAspect float64
}

// DefaultModuleParams mirrors the paper's setup: N configurable, small
// integer dimensions, aspect ratios up to 1:4.
func DefaultModuleParams(n int) ModuleParams {
	return ModuleParams{N: n, MinArea: 120, MaxArea: 1200, MaxAspect: 4}
}

// Validate rejects unusable parameters.
func (p ModuleParams) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("gen: N must be >= 1, got %d", p.N)
	}
	if p.MinArea < 1 || p.MaxArea < p.MinArea {
		return fmt.Errorf("gen: bad area range [%d, %d]", p.MinArea, p.MaxArea)
	}
	if p.MaxAspect < 1 {
		return fmt.Errorf("gen: MaxAspect must be >= 1, got %v", p.MaxAspect)
	}
	return nil
}

// Module generates one module's irreducible R-list with exactly p.N
// implementations: a staircase of integer (w, h) pairs whose areas hover
// around a nominal area drawn from [MinArea, MaxArea].
func Module(rng *rand.Rand, p ModuleParams) (shape.RList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	area := float64(p.MinArea) + rng.Float64()*float64(p.MaxArea-p.MinArea)
	side := math.Sqrt(area)
	wMax := int64(math.Round(side * math.Sqrt(p.MaxAspect)))
	wMin := int64(math.Round(side / math.Sqrt(p.MaxAspect)))
	if wMin < 1 {
		wMin = 1
	}
	if wMax < wMin+int64(p.N)-1 {
		wMax = wMin + int64(p.N) - 1 // guarantee N distinct widths
	}
	// N distinct widths spread over [wMin, wMax], descending.
	widths := make([]int64, p.N)
	if p.N == 1 {
		widths[0] = (wMin + wMax) / 2
	} else {
		span := wMax - wMin
		for i := 0; i < p.N; i++ {
			widths[i] = wMax - span*int64(i)/int64(p.N-1)
		}
		// Jitter interior widths without breaking strict monotonicity.
		for i := 1; i < p.N-1; i++ {
			lo, hi := widths[i+1]+1, widths[i-1]-1
			if hi > lo {
				widths[i] = lo + rng.Int63n(hi-lo+1)
			}
		}
	}
	impls := make([]shape.RImpl, p.N)
	prevH := int64(0)
	for i, w := range widths {
		h := int64(math.Round(area / float64(w)))
		if h <= prevH {
			h = prevH + 1 // strict height increase keeps the list irreducible
		}
		impls[i] = shape.RImpl{W: w, H: h}
		prevH = h
	}
	list := shape.RList(impls)
	if err := list.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated list invalid: %w", err)
	}
	return list, nil
}

// Library builds a module library for every leaf of the tree, assigning
// each leaf a fresh module drawn from p. Leaves must already carry unique
// module names (see the FP builders and RandomTree). The result converts
// directly to optimizer.Library.
func Library(rng *rand.Rand, tree *plan.Node, p ModuleParams) (map[string]shape.RList, error) {
	lib := make(map[string]shape.RList)
	for _, leaf := range tree.Leaves() {
		if leaf.Module == "" {
			return nil, fmt.Errorf("gen: leaf without module name")
		}
		if _, dup := lib[leaf.Module]; dup {
			return nil, fmt.Errorf("gen: duplicate module name %q", leaf.Module)
		}
		l, err := Module(rng, p)
		if err != nil {
			return nil, err
		}
		lib[leaf.Module] = l
	}
	return lib, nil
}

// namer hands out sequential module names m000, m001, …
type namer struct{ next int }

func (n *namer) leaf() *plan.Node {
	l := plan.NewLeaf(fmt.Sprintf("m%03d", n.next))
	n.next++
	return l
}

// wheel5 builds a pinwheel of five fresh leaves.
func (n *namer) wheel5() *plan.Node {
	return plan.NewWheel(n.leaf(), n.leaf(), n.leaf(), n.leaf(), n.leaf())
}

// wheel9 builds a 9-module pattern: a pinwheel whose NW block is itself a
// 5-module pinwheel.
func (n *namer) wheel9() *plan.Node {
	return plan.NewWheel(n.wheel5(), n.leaf(), n.leaf(), n.leaf(), n.leaf())
}

// wheel25 builds the 25-module pinwheel-of-pinwheels (the FP1 pattern).
func (n *namer) wheel25() *plan.Node {
	return plan.NewWheel(n.wheel5(), n.wheel5(), n.wheel5(), n.wheel5(), n.wheel5())
}

// FP1 is the 25-module floorplan of Figure 8(a), reconstructed as a
// pinwheel of five 5-module pinwheels.
func FP1() *plan.Node {
	n := &namer{}
	t := plan.NewWheel(n.wheel5(), n.wheel5(), n.wheel5(), n.wheel5(), n.wheel5())
	t.Name = "FP1"
	return t
}

// FP2 is the 49-module floorplan of Figure 8(b), reconstructed as a
// pinwheel whose five blocks hold 25, 9, 5, 5 and 5 modules
// (25 + 9 + 3·5 = 49), all pinwheels themselves. The all-wheel structure
// matches the evaluation's character: in the paper FP2's implementation
// counts dwarf FP1's, which only happens when every level is non-slicing.
func FP2() *plan.Node {
	n := &namer{}
	t := plan.NewWheel(n.wheel25(), n.wheel9(), n.wheel5(), n.wheel5(), n.wheel5())
	t.Name = "FP2"
	return t
}

// block24 is the 24-module block of Figure 8(c): a pinwheel of four
// 5-module pinwheels and one 4-module slicing quad (4·5 + 4 = 24).
func block24(n *namer) *plan.Node {
	quad := plan.NewHSlice(
		plan.NewVSlice(n.leaf(), n.leaf()),
		plan.NewVSlice(n.leaf(), n.leaf()),
	)
	return plan.NewWheel(n.wheel5(), n.wheel5(), n.wheel5(), n.wheel5(), quad)
}

// FP3 is the 120-module floorplan: the Figure 8(d) pinwheel whose five
// blocks each hold the 24-module block of Figure 8(c).
func FP3() *plan.Node {
	n := &namer{}
	t := plan.NewWheel(block24(n), block24(n), block24(n), block24(n), block24(n))
	t.Name = "FP3"
	return t
}

// block49 is FP2's 49-module block, reused by FP4.
func block49(n *namer) *plan.Node {
	return plan.NewWheel(n.wheel25(), n.wheel9(), n.wheel5(), n.wheel5(), n.wheel5())
}

// FP4 is the 245-module floorplan: the Figure 8(d) pinwheel whose five
// blocks each hold the 49-module block of Figure 8(b).
func FP4() *plan.Node {
	n := &namer{}
	t := plan.NewWheel(block49(n), block49(n), block49(n), block49(n), block49(n))
	t.Name = "FP4"
	return t
}

// ByName returns one of the four paper floorplans.
func ByName(name string) (*plan.Node, error) {
	switch name {
	case "FP1", "fp1":
		return FP1(), nil
	case "FP2", "fp2":
		return FP2(), nil
	case "FP3", "fp3":
		return FP3(), nil
	case "FP4", "fp4":
		return FP4(), nil
	default:
		return nil, fmt.Errorf("gen: unknown floorplan %q (want FP1..FP4)", name)
	}
}

// RandomTree builds a random floorplan tree with exactly modules leaves.
// pWheel is the probability that a node with >= 5 remaining modules becomes
// a pinwheel; otherwise slicing cuts are used. Each leaf gets a unique
// module name.
func RandomTree(rng *rand.Rand, modules int, pWheel float64) (*plan.Node, error) {
	if modules < 1 {
		return nil, fmt.Errorf("gen: need >= 1 module, got %d", modules)
	}
	n := &namer{}
	t := randomTree(rng, n, modules, pWheel)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("gen: random tree invalid: %w", err)
	}
	return t, nil
}

func randomTree(rng *rand.Rand, n *namer, modules int, pWheel float64) *plan.Node {
	if modules == 1 {
		return n.leaf()
	}
	if modules >= 5 && rng.Float64() < pWheel {
		parts := splitCount(rng, modules, 5)
		kids := make([]*plan.Node, 5)
		for i, c := range parts {
			kids[i] = randomTree(rng, n, c, pWheel)
		}
		w := plan.NewWheel(kids[0], kids[1], kids[2], kids[3], kids[4])
		if rng.Intn(2) == 0 {
			w.CCW = true
		}
		return w
	}
	// Slicing cut into 2 or 3 parts.
	k := 2
	if modules >= 3 && rng.Intn(3) == 0 {
		k = 3
	}
	parts := splitCount(rng, modules, k)
	kids := make([]*plan.Node, k)
	for i, c := range parts {
		kids[i] = randomTree(rng, n, c, pWheel)
	}
	if rng.Intn(2) == 0 {
		return plan.NewHSlice(kids...)
	}
	return plan.NewVSlice(kids...)
}

// splitCount partitions total into k positive parts, roughly evenly with
// random imbalance.
func splitCount(rng *rand.Rand, total, k int) []int {
	parts := make([]int, k)
	for i := range parts {
		parts[i] = 1
	}
	for extra := total - k; extra > 0; extra-- {
		parts[rng.Intn(k)]++
	}
	return parts
}
