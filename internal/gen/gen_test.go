package gen

import (
	"math/rand"
	"testing"

	"floorplan/internal/plan"
)

func TestModuleExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 40} {
		for trial := 0; trial < 20; trial++ {
			l, err := Module(rng, DefaultModuleParams(n))
			if err != nil {
				t.Fatal(err)
			}
			if len(l) != n {
				t.Fatalf("N=%d: got %d implementations", n, len(l))
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("N=%d: %v", n, err)
			}
		}
	}
}

func TestModuleParamsValidate(t *testing.T) {
	bad := []ModuleParams{
		{N: 0, MinArea: 1, MaxArea: 2, MaxAspect: 2},
		{N: 5, MinArea: 0, MaxArea: 2, MaxAspect: 2},
		{N: 5, MinArea: 10, MaxArea: 5, MaxAspect: 2},
		{N: 5, MinArea: 1, MaxArea: 2, MaxAspect: 0.5},
	}
	for _, p := range bad {
		if _, err := Module(rand.New(rand.NewSource(1)), p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestModuleDeterministic(t *testing.T) {
	a, err := Module(rand.New(rand.NewSource(7)), DefaultModuleParams(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Module(rand.New(rand.NewSource(7)), DefaultModuleParams(10))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different modules")
	}
}

func TestPaperFloorplans(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *plan.Node
		modules int
		wheels  int
	}{
		{"FP1", FP1, 25, 6},
		{"FP2", FP2, 49, 12},  // top + w25(6) + w9(2) + 3×w5
		{"FP3", FP3, 120, 26}, // 5 blocks × (1 outer + 4 inner wheels) + top wheel
		{"FP4", FP4, 245, 61}, // 5 blocks × 12 wheels + top wheel
	}
	for _, tc := range cases {
		tr := tc.build()
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got := tr.ModuleCount(); got != tc.modules {
			t.Errorf("%s: %d modules, want %d", tc.name, got, tc.modules)
		}
		if got := tr.WheelCount(); got != tc.wheels {
			t.Errorf("%s: %d wheels, want %d", tc.name, got, tc.wheels)
		}
		// Unique module names.
		seen := map[string]bool{}
		for _, l := range tr.Leaves() {
			if seen[l.Module] {
				t.Errorf("%s: duplicate module %q", tc.name, l.Module)
			}
			seen[l.Module] = true
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FP1", "fp2", "FP3", "fp4"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("FP9"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestLibraryCoversLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := FP1()
	lib, err := Library(rng, tr, DefaultModuleParams(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 25 {
		t.Fatalf("library has %d modules, want 25", len(lib))
	}
	for name, l := range lib {
		if err := l.Validate(); err != nil {
			t.Fatalf("module %s: %v", name, err)
		}
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(40)
		tr, err := RandomTree(rng, m, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.ModuleCount(); got != m {
			t.Fatalf("asked %d modules, got %d", m, got)
		}
	}
	if _, err := RandomTree(rng, 0, 0.5); err == nil {
		t.Error("0 modules accepted")
	}
}

func TestSplitCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		total := 5 + rng.Intn(50)
		k := 2 + rng.Intn(4)
		parts := splitCount(rng, total, k)
		sum := 0
		for _, p := range parts {
			if p < 1 {
				t.Fatalf("empty part in %v", parts)
			}
			sum += p
		}
		if sum != total {
			t.Fatalf("parts %v sum to %d, want %d", parts, sum, total)
		}
	}
}
