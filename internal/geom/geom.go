// Package geom provides the integer geometry primitives shared by the
// floorplan optimizer: points, axis-aligned rectangles and half-open
// intervals. All coordinates are int64 "layout units"; using integers keeps
// every area and error computation exact and every run deterministic.
package geom

import "fmt"

// Point is a point in the layout plane.
type Point struct {
	X, Y int64
}

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle spanning [MinX,MaxX) × [MinY,MaxY).
// A Rect is valid when MinX <= MaxX and MinY <= MaxY; zero width or height
// is permitted (an empty rectangle).
type Rect struct {
	MinX, MinY, MaxX, MaxY int64
}

// NewRect builds a rectangle from its lower-left corner and its size.
// Negative sizes are rejected.
func NewRect(x, y, w, h int64) (Rect, error) {
	if w < 0 || h < 0 {
		return Rect{}, fmt.Errorf("geom: negative rectangle size %dx%d", w, h)
	}
	return Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, nil
}

// RectWH builds a rectangle at the origin with the given size.
// It panics on negative sizes; use NewRect when the inputs are untrusted.
func RectWH(w, h int64) Rect {
	r, err := NewRect(0, 0, w, h)
	if err != nil {
		panic(err)
	}
	return r
}

// Width returns the horizontal extent of r.
func (r Rect) Width() int64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() int64 { return r.MaxY - r.MinY }

// Area returns Width*Height.
func (r Rect) Area() int64 { return r.Width() * r.Height() }

// Empty reports whether r has zero area.
func (r Rect) Empty() bool { return r.Width() == 0 || r.Height() == 0 }

// Valid reports whether r is well formed (non-negative extents).
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int64) Rect {
	return Rect{r.MinX + dx, r.MinY + dy, r.MaxX + dx, r.MaxY + dy}
}

// Contains reports whether inner lies entirely inside r (boundaries may
// touch). Empty rectangles positioned inside r are contained.
func (r Rect) Contains(inner Rect) bool {
	return inner.MinX >= r.MinX && inner.MaxX <= r.MaxX &&
		inner.MinY >= r.MinY && inner.MaxY <= r.MaxY
}

// Overlaps reports whether r and s share interior area. Rectangles that
// merely touch along an edge or corner do not overlap.
func (r Rect) Overlaps(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX &&
		r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Union returns the bounding box of r and s. Empty rectangles still
// contribute their position, matching the needs of placement traceback.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: min64(r.MinX, s.MinX),
		MinY: min64(r.MinY, s.MinY),
		MaxX: max64(r.MaxX, s.MaxX),
		MaxY: max64(r.MaxY, s.MaxY),
	}
}

// Intersect returns the overlap of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: max64(r.MinX, s.MinX),
		MinY: max64(r.MinY, s.MinY),
		MaxX: min64(r.MaxX, s.MaxX),
		MaxY: min64(r.MaxY, s.MaxY),
	}
	if out.MinX >= out.MaxX || out.MinY >= out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// MirrorX reflects r across the vertical line x = axis, preserving validity.
func (r Rect) MirrorX(axis int64) Rect {
	return Rect{
		MinX: 2*axis - r.MaxX,
		MinY: r.MinY,
		MaxX: 2*axis - r.MinX,
		MaxY: r.MaxY,
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Interval is a half-open interval [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Len returns Hi-Lo.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x int64) bool { return iv.Lo <= x && x < iv.Hi }

// Overlaps reports whether two half-open intervals share points.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Min64 returns the smaller of a and b.
func Min64(a, b int64) int64 { return min64(a, b) }

// Max64 returns the larger of a and b.
func Max64(a, b int64) int64 { return max64(a, b) }

// Abs64 returns |a|. It panics on math.MinInt64, which cannot occur for
// layout dimensions.
func Abs64(a int64) int64 {
	if a < 0 {
		a = -a
		if a < 0 {
			panic("geom: Abs64 overflow")
		}
	}
	return a
}
