package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRect(t *testing.T) {
	r, err := NewRect(2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Width() != 4 || r.Height() != 5 || r.Area() != 20 {
		t.Errorf("rect = %v", r)
	}
	if _, err := NewRect(0, 0, -1, 2); err == nil {
		t.Error("expected error for negative width")
	}
	if _, err := NewRect(0, 0, 1, -2); err == nil {
		t.Error("expected error for negative height")
	}
}

func TestRectWHPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative size")
		}
	}()
	RectWH(-1, 1)
}

func TestRectPredicates(t *testing.T) {
	r := RectWH(10, 10)
	inner := Rect{MinX: 2, MinY: 2, MaxX: 8, MaxY: 8}
	if !r.Contains(inner) {
		t.Error("Contains failed for strict inner")
	}
	if !r.Contains(r) {
		t.Error("Contains failed for itself")
	}
	outside := Rect{MinX: 5, MinY: 5, MaxX: 11, MaxY: 8}
	if r.Contains(outside) {
		t.Error("Contains passed for protruding rect")
	}
	if !r.Overlaps(outside) {
		t.Error("Overlaps failed for partial overlap")
	}
	touch := Rect{MinX: 10, MinY: 0, MaxX: 20, MaxY: 10}
	if r.Overlaps(touch) {
		t.Error("edge-touching rects must not overlap")
	}
	if r.Empty() {
		t.Error("10x10 rect reported empty")
	}
	if !RectWH(0, 5).Empty() {
		t.Error("zero-width rect not reported empty")
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 6}) {
		t.Errorf("Union = %v", u)
	}
	in, ok := a.Intersect(b)
	if !ok || in != (Rect{2, 2, 4, 4}) {
		t.Errorf("Intersect = %v, %v", in, ok)
	}
	c := Rect{4, 0, 8, 4}
	if _, ok := a.Intersect(c); ok {
		t.Error("touching rects should not intersect")
	}
}

func TestRectTranslateMirror(t *testing.T) {
	r := Rect{1, 2, 3, 5}
	tr := r.Translate(10, 20)
	if tr != (Rect{11, 22, 13, 25}) {
		t.Errorf("Translate = %v", tr)
	}
	m := r.MirrorX(0)
	if m != (Rect{-3, 2, -1, 5}) {
		t.Errorf("MirrorX = %v", m)
	}
	if !m.Valid() {
		t.Error("mirrored rect invalid")
	}
	// Mirroring twice about the same axis restores the rectangle.
	if got := m.MirrorX(0); got != r {
		t.Errorf("double mirror = %v, want %v", got, r)
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 5}
	if iv.Len() != 3 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Contains(2) || iv.Contains(5) || !iv.Contains(4) {
		t.Error("Contains half-open semantics violated")
	}
	if !iv.Overlaps(Interval{4, 9}) || iv.Overlaps(Interval{5, 9}) {
		t.Error("Overlaps half-open semantics violated")
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min64(3, -2) != -2 || Max64(3, -2) != 3 {
		t.Error("Min64/Max64 wrong")
	}
	if Abs64(-7) != 7 || Abs64(7) != 7 || Abs64(0) != 0 {
		t.Error("Abs64 wrong")
	}
}

func TestMirrorPreservesAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(x, y int64, w, h uint16, axis int64) bool {
		r, err := NewRect(x%1000, y%1000, int64(w), int64(h))
		if err != nil {
			return false
		}
		m := r.MirrorX(axis % 1000)
		return m.Valid() && m.Area() == r.Area() && m.Width() == r.Width() && m.Height() == r.Height()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, 4})
	if p != (Point{4, 6}) {
		t.Errorf("Add = %v", p)
	}
	if p.String() != "(4,6)" {
		t.Errorf("String = %s", p.String())
	}
}
