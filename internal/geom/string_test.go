package geom

import "testing"

func TestRectString(t *testing.T) {
	r := Rect{MinX: 1, MinY: 2, MaxX: 4, MaxY: 6}
	if got := r.String(); got != "[1,4)x[2,6)" {
		t.Errorf("Rect.String = %q", got)
	}
}

func TestAbs64OverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on MinInt64")
		}
	}()
	Abs64(-9223372036854775808)
}
