package substore

import (
	"reflect"
	"testing"

	"floorplan/internal/plan"
	"floorplan/internal/shape"
)

func digest(b byte) plan.Digest {
	var d plan.Digest
	d[0] = b
	return d
}

func rRecord(w int64) NodeRecord {
	return NodeRecord{
		RSel:       true,
		Generated:  7,
		Stored:     3,
		SelErr:     12,
		SelN:       7,
		SelK:       3,
		Candidates: 21,
		RL:         shape.RList{{W: w, H: 2}, {W: w + 1, H: 1}},
	}
}

// TestRecordRoundTrip serializes and re-decodes both record shapes and
// demands exact equality — splicing depends on every field surviving.
func TestRecordRoundTrip(t *testing.T) {
	recs := []NodeRecord{
		rRecord(4),
		{
			LShaped:    true,
			LSel:       true,
			Generated:  11,
			Stored:     5,
			Lists:      2,
			SelErr:     -3,
			SelN:       11,
			SelK:       5,
			Candidates: 40,
			LS: shape.LSet{Lists: []shape.LList{
				{{W1: 5, W2: 2, H1: 4, H2: 1}, {W1: 4, W2: 3, H1: 5, H2: 2}},
				{},
			}},
		},
		{RL: shape.RList{}},
	}
	for i, rec := range recs {
		blob := appendRecord(nil, rec)
		back, err := decodeRecord(blob)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		// Decoding materializes empty slices; normalize before comparing.
		if len(rec.RL) == 0 && len(back.RL) == 0 {
			rec.RL, back.RL = nil, nil
		}
		if !reflect.DeepEqual(rec, back) {
			t.Fatalf("record %d round trip:\n%+v\n%+v", i, rec, back)
		}
	}
}

// TestRecordDecodeRejects feeds malformed blobs: wrong version, truncation
// and trailing garbage must all error rather than decode junk.
func TestRecordDecodeRejects(t *testing.T) {
	good := appendRecord(nil, rRecord(4))
	bad := [][]byte{
		nil,
		{recordVersion},
		{recordVersion + 1, 0},
		good[:len(good)-1],
		append(append([]byte{}, good...), 0),
	}
	for i, blob := range bad {
		if _, err := decodeRecord(blob); err == nil {
			t.Fatalf("blob %d decoded without error", i)
		}
	}
}

// TestStoreGetPut covers the basic contract: miss before put, hit after,
// content-addressed no-op on re-put, and stats accounting.
func TestStoreGetPut(t *testing.T) {
	s, err := New(Config{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	k := digest(1)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(k, rRecord(4))
	rec, ok := s.Get(k)
	if !ok {
		t.Fatal("miss after put")
	}
	if !rec.RL.Equal(rRecord(4).RL) || rec.SelErr != 12 {
		t.Fatalf("got %+v", rec)
	}
	// Same digest, same evaluation: a second put must not grow the store.
	s.Put(k, rRecord(4))
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate put", s.Len())
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes <= 0 || st.Bytes > st.Budget {
		t.Fatalf("bytes %d outside (0, %d]", st.Bytes, st.Budget)
	}
}

// TestStoreEviction fills a small store past its budget and checks that
// LRU entries are evicted, the budget is never exceeded, and recently used
// entries survive over stale ones.
func TestStoreEviction(t *testing.T) {
	// Single shard so LRU order is global and deterministic.
	s, err := New(Config{MaxBytes: 4 * (entryOverhead + 64), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		s.Put(digest(byte(i)), rRecord(int64(i+1)))
		// Keep key 0 hot so eviction takes the stale middle keys.
		s.Get(digest(0))
		if cur := s.Stats().Bytes; cur > s.Stats().Budget {
			t.Fatalf("over budget: %d", cur)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 4-entry budget")
	}
	if st.Entries >= 32 {
		t.Fatalf("store kept all %d entries", st.Entries)
	}
	if _, ok := s.Get(digest(0)); !ok {
		t.Fatal("hot key was evicted over stale ones")
	}
	if _, ok := s.Get(digest(1)); ok {
		t.Fatal("stale key 1 survived 31 younger puts in a 4-entry budget")
	}
}

// TestStoreRejectsOversize checks that a record larger than the whole
// budget is dropped without sacrificing resident entries.
func TestStoreRejectsOversize(t *testing.T) {
	s, err := New(Config{MaxBytes: entryOverhead + 64, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(digest(1), rRecord(4))
	if s.Len() != 1 {
		t.Fatal("small record not admitted")
	}
	big := NodeRecord{RL: make(shape.RList, 4096)}
	for i := range big.RL {
		big.RL[i] = shape.RImpl{W: int64(i + 1), H: int64(4096 - i)}
	}
	s.Put(digest(2), big)
	if _, ok := s.Get(digest(2)); ok {
		t.Fatal("oversize record admitted")
	}
	if _, ok := s.Get(digest(1)); !ok {
		t.Fatal("oversize reject evicted a resident entry")
	}
	if s.Stats().Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", s.Stats().Rejects)
	}
}

// TestStoreDropsUndecodable plants a corrupt blob and checks Get treats it
// as a miss and removes it.
func TestStoreDropsUndecodable(t *testing.T) {
	s, err := New(Config{MaxBytes: 1 << 20, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	k := digest(3)
	s.Put(k, rRecord(4))
	sh := s.shard(k)
	sh.mu.Lock()
	sh.entries[k].Value.(*entry).blob = []byte{recordVersion + 9}
	sh.mu.Unlock()
	if _, ok := s.Get(k); ok {
		t.Fatal("corrupt record served as a hit")
	}
	if s.Len() != 0 {
		t.Fatal("corrupt record left resident")
	}
}

// TestNilStore checks the disabled state: every method is a safe no-op.
func TestNilStore(t *testing.T) {
	var s *Store
	if _, ok := s.Get(digest(1)); ok {
		t.Fatal("nil store hit")
	}
	s.Put(digest(1), rRecord(4))
	if s.Len() != 0 || s.Stats() != (Stats{}) {
		t.Fatal("nil store reported state")
	}
}

// TestNewRejectsNonPositiveBudget: a disabled store is a nil *Store, not a
// zero-budget one.
func TestNewRejectsNonPositiveBudget(t *testing.T) {
	for _, b := range []int64{0, -1} {
		if _, err := New(Config{MaxBytes: b}); err == nil {
			t.Fatalf("New accepted budget %d", b)
		}
	}
}

// TestStoreConcurrent hammers one store from many goroutines under the
// race detector.
func TestStoreConcurrent(t *testing.T) {
	s, err := New(Config{MaxBytes: 8 * (entryOverhead + 64), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := digest(byte((g*37 + i) % 64))
				if i%2 == 0 {
					s.Put(k, rRecord(int64(i%7+1)))
				} else {
					s.Get(k)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := s.Stats(); st.Bytes > st.Budget {
		t.Fatalf("over budget: %+v", st)
	}
}
