package substore

import (
	"encoding/binary"
	"fmt"

	"floorplan/internal/shape"
)

// NodeRecord is one node's complete evaluation outcome: the retained
// shape curve plus every statistic the optimizer's deterministic
// accounting and telemetry derive from evaluating the node. Splicing a
// record in place of evaluation must be observationally identical to
// having evaluated — the Stats replay, NodeStats table, telemetry
// counters and placement traceback all read these fields — which is why
// the record carries selection and candidate counts, not just the curve.
type NodeRecord struct {
	// LShaped mirrors BinNode.IsL of the node that produced the record:
	// false stores RL, true stores LS. A digest hit whose LShaped
	// disagrees with the consulting node would indicate a hash collision
	// or format drift; callers treat it as a miss.
	LShaped bool
	// RSel/LSel record whether a selection pass ran on the node's curve.
	RSel, LSel bool
	// Generated and Stored are the implementation counts before and after
	// selection; Lists is the number of L-lists in the set (0 for R).
	Generated, Stored, Lists int
	// SelErr is the selection error admitted; SelN/SelK the CSPP instance
	// dimensions (zero when no selection ran).
	SelErr int64
	SelN   int
	SelK   int
	// Candidates is the combine operator's candidate-pair count.
	Candidates int64
	// RL is the retained rectangular curve (LShaped=false).
	RL shape.RList
	// LS is the retained L-shaped set (LShaped=true).
	LS shape.LSet
}

// recordVersion tags the serialized format; decodeRecord rejects other
// versions so a format change cannot misinterpret resident entries.
const recordVersion = 1

// Record flag bits.
const (
	flagLShaped = 1 << iota
	flagRSel
	flagLSel
)

// appendRecord appends the deterministic binary serialization of rec.
func appendRecord(dst []byte, rec NodeRecord) []byte {
	dst = append(dst, recordVersion)
	var flags byte
	if rec.LShaped {
		flags |= flagLShaped
	}
	if rec.RSel {
		flags |= flagRSel
	}
	if rec.LSel {
		flags |= flagLSel
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(rec.Generated))
	dst = binary.AppendUvarint(dst, uint64(rec.Stored))
	dst = binary.AppendUvarint(dst, uint64(rec.Lists))
	dst = binary.AppendVarint(dst, rec.SelErr)
	dst = binary.AppendUvarint(dst, uint64(rec.SelN))
	dst = binary.AppendUvarint(dst, uint64(rec.SelK))
	dst = binary.AppendVarint(dst, rec.Candidates)
	if rec.LShaped {
		dst = binary.AppendUvarint(dst, uint64(len(rec.LS.Lists)))
		for _, l := range rec.LS.Lists {
			dst = binary.AppendUvarint(dst, uint64(len(l)))
			for _, im := range l {
				dst = binary.AppendVarint(dst, im.W1)
				dst = binary.AppendVarint(dst, im.W2)
				dst = binary.AppendVarint(dst, im.H1)
				dst = binary.AppendVarint(dst, im.H2)
			}
		}
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(rec.RL)))
		for _, im := range rec.RL {
			dst = binary.AppendVarint(dst, im.W)
			dst = binary.AppendVarint(dst, im.H)
		}
	}
	return dst
}

// decoder is a cursor over a record blob.
type decoder struct {
	buf []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("substore: truncated uvarint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("substore: truncated varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

// decodeRecord parses a serialized record, returning freshly allocated
// slices the caller owns.
func decodeRecord(blob []byte) (NodeRecord, error) {
	var rec NodeRecord
	if len(blob) < 2 {
		return rec, fmt.Errorf("substore: record too short (%d bytes)", len(blob))
	}
	if blob[0] != recordVersion {
		return rec, fmt.Errorf("substore: record version %d, want %d", blob[0], recordVersion)
	}
	flags := blob[1]
	rec.LShaped = flags&flagLShaped != 0
	rec.RSel = flags&flagRSel != 0
	rec.LSel = flags&flagLSel != 0
	d := &decoder{buf: blob[2:]}
	gen, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	stored, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	lists, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.Generated, rec.Stored, rec.Lists = int(gen), int(stored), int(lists)
	if rec.SelErr, err = d.varint(); err != nil {
		return rec, err
	}
	seln, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	selk, err := d.uvarint()
	if err != nil {
		return rec, err
	}
	rec.SelN, rec.SelK = int(seln), int(selk)
	if rec.Candidates, err = d.varint(); err != nil {
		return rec, err
	}
	if rec.LShaped {
		nLists, err := d.uvarint()
		if err != nil {
			return rec, err
		}
		rec.LS.Lists = make([]shape.LList, nLists)
		for i := range rec.LS.Lists {
			n, err := d.uvarint()
			if err != nil {
				return rec, err
			}
			l := make(shape.LList, n)
			for j := range l {
				if l[j].W1, err = d.varint(); err != nil {
					return rec, err
				}
				if l[j].W2, err = d.varint(); err != nil {
					return rec, err
				}
				if l[j].H1, err = d.varint(); err != nil {
					return rec, err
				}
				if l[j].H2, err = d.varint(); err != nil {
					return rec, err
				}
			}
			rec.LS.Lists[i] = l
		}
	} else {
		n, err := d.uvarint()
		if err != nil {
			return rec, err
		}
		rec.RL = make(shape.RList, n)
		for i := range rec.RL {
			if rec.RL[i].W, err = d.varint(); err != nil {
				return rec, err
			}
			if rec.RL[i].H, err = d.varint(); err != nil {
				return rec, err
			}
		}
	}
	if len(d.buf) != 0 {
		return rec, fmt.Errorf("substore: %d trailing bytes after record", len(d.buf))
	}
	return rec, nil
}
