// Package substore is the optimizer's cross-request subtree memo: a
// bounded, sharded, content-addressed store of per-node evaluation
// results, keyed by the Merkle-style subtree digests of
// plan.SubtreeDigests. Where internal/cache memoizes whole workloads
// (all-or-nothing per request), this store memoizes every node of every
// evaluated tree — so two requests sharing a sub-floorplan share the
// work below it, and re-optimizing an edited tree recomputes only the
// spine from the changed leaf to the root.
//
// Values are NodeRecords: the node's retained shape curve (rectangular
// list or L-shaped set) plus the exact evaluation statistics the
// optimizer's deterministic accounting replays (generated/stored counts,
// selection error, combine candidates). Storing the full outcome rather
// than just the curve is what keeps spliced runs byte-identical to fresh
// ones — the hard requirement of the store.
//
// Keys live in a namespace disjoint from internal/cache's full-workload
// keys by construction: subtree digest preimages start with a reserved
// tag byte (see plan.SubtreeDigests), so no subtree digest can equal a
// workload key even though both are SHA-256 values.
//
// Storage is bounded by a byte budget accounted through an
// internal/memtrack.Tracker with per-shard LRU eviction, mirroring
// internal/cache. All operations are safe for concurrent use; locking is
// per shard. A nil *Store is the disabled state.
package substore

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"floorplan/internal/memtrack"
	"floorplan/internal/plan"
	"floorplan/internal/telemetry"
)

// entryOverhead approximates the per-entry bookkeeping cost (key, map slot,
// LRU node) charged against the byte budget in addition to the payload.
const entryOverhead = 128

// Config sizes a Store.
type Config struct {
	// MaxBytes is the budget for serialized records plus per-entry
	// overhead. Required: New fails on a non-positive budget (a disabled
	// store is a nil *Store, which every method accepts).
	MaxBytes int64
	// Shards is the number of independently locked shards (0 = 16;
	// rounded up to a power of two).
	Shards int
	// Telemetry receives the substore.* counters and the byte-footprint
	// watermark; nil disables recording.
	Telemetry *telemetry.Collector
}

// Store is the sharded subtree result store. A nil *Store is the disabled
// state: Get always misses, Put is a no-op.
type Store struct {
	shards []shard
	mask   uint32
	mem    *memtrack.Tracker
	tel    *telemetry.Collector

	hits, misses, evictions, rejects atomic.Int64
}

type shard struct {
	mu      sync.Mutex
	entries map[plan.Digest]*list.Element
	lru     *list.List // front = most recently used
}

type entry struct {
	key  plan.Digest
	blob []byte
	size int64
}

// New builds a store under the given byte budget.
func New(cfg Config) (*Store, error) {
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("substore: non-positive byte budget %d", cfg.MaxBytes)
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Store{
		shards: make([]shard, p),
		mask:   uint32(p - 1),
		mem:    memtrack.NewTracker(cfg.MaxBytes),
		tel:    cfg.Telemetry,
	}
	for i := range s.shards {
		s.shards[i].entries = make(map[plan.Digest]*list.Element)
		s.shards[i].lru = list.New()
	}
	return s, nil
}

func (s *Store) shard(k plan.Digest) *shard {
	return &s.shards[binary.LittleEndian.Uint32(k[:4])&s.mask]
}

// Get returns the record stored under k and marks the entry recently
// used. The record's slices are freshly decoded and owned by the caller.
// A nil store always misses; a record that fails to decode (format drift)
// is treated as a miss and dropped.
func (s *Store) Get(k plan.Digest) (NodeRecord, bool) {
	if s == nil {
		return NodeRecord{}, false
	}
	sh := s.shard(k)
	sh.mu.Lock()
	el, ok := sh.entries[k]
	var blob []byte
	if ok {
		sh.lru.MoveToFront(el)
		blob = el.Value.(*entry).blob
	}
	sh.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		s.tel.Inc(telemetry.CtrSubstoreMisses)
		return NodeRecord{}, false
	}
	rec, err := decodeRecord(blob)
	if err != nil {
		// Undecodable entry: drop it and report a miss.
		s.delete(k)
		s.misses.Add(1)
		s.tel.Inc(telemetry.CtrSubstoreMisses)
		return NodeRecord{}, false
	}
	s.hits.Add(1)
	s.tel.Inc(telemetry.CtrSubstoreHits)
	return rec, true
}

// Put serializes and stores rec under k, evicting least-recently-used
// entries of the same shard until the byte budget admits it. Storing an
// existing key is a no-op (records are content-addressed: same digest,
// same evaluation). A record the budget can never admit is dropped and
// counted as a reject.
func (s *Store) Put(k plan.Digest, rec NodeRecord) {
	if s == nil {
		return
	}
	blob := appendRecord(nil, rec)
	size := int64(len(blob)) + entryOverhead
	if size > s.mem.Limit() {
		// Never admissible: reject before sacrificing resident entries.
		s.rejects.Add(1)
		s.tel.Inc(telemetry.CtrSubstoreRejects)
		return
	}
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.entries[k]; exists {
		return
	}
	for {
		err := s.mem.Add(size)
		if err == nil {
			break
		}
		if !errors.Is(err, memtrack.ErrLimit) || sh.lru.Len() == 0 {
			// Oversize for the whole budget, or this shard has nothing
			// left to give back: drop the record.
			s.rejects.Add(1)
			s.tel.Inc(telemetry.CtrSubstoreRejects)
			return
		}
		s.evictOldest(sh)
	}
	el := sh.lru.PushFront(&entry{key: k, blob: blob, size: size})
	sh.entries[k] = el
	s.tel.Observe(telemetry.MaxSubstoreBytes, s.mem.Current())
}

// delete removes the entry stored under k, if present.
func (s *Store) delete(k plan.Digest) {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[k]
	if !ok {
		return
	}
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.entries, e.key)
	_ = s.mem.Release(e.size)
}

// evictOldest removes the shard's least-recently-used entry and releases
// its bytes. The shard lock must be held.
func (s *Store) evictOldest(sh *shard) {
	el := sh.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.entries, e.key)
	// Release cannot fail here: every stored entry's size was admitted.
	_ = s.mem.Release(e.size)
	s.evictions.Add(1)
	s.tel.Inc(telemetry.CtrSubstoreEvictions)
}

// Len returns the number of records across all shards.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot for /v1/stats and tests.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	PeakBytes int64 `json:"peak_bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Rejects   int64 `json:"rejects"`
}

// Stats snapshots the store. A nil store reports zeros.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Entries:   s.Len(),
		Bytes:     s.mem.Current(),
		PeakBytes: s.mem.Admitted(),
		Budget:    s.mem.Limit(),
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Rejects:   s.rejects.Load(),
	}
}
