package slogx

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewJSONRecords(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("request", "path", "/v1/optimize", "status", 200)
	l.Debug("suppressed") // below level
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d records, want 1: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("record is not JSON: %v\n%s", err, lines[0])
	}
	if rec["msg"] != "request" || rec["path"] != "/v1/optimize" {
		t.Fatalf("unexpected record %v", rec)
	}
}

func TestNewTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("shed", "pending", 7)
	if out := buf.String(); !strings.Contains(out, "msg=shed") || !strings.Contains(out, "pending=7") {
		t.Fatalf("unexpected text record %q", out)
	}
}

func TestNewDefaults(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if l.Enabled(nil, slog.LevelDebug) {
		t.Fatal("default level admits debug")
	}
	l.Info("x")
	if !json.Valid([]byte(strings.TrimSpace(buf.String()))) {
		t.Fatalf("default format is not JSON: %q", buf.String())
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New(nil, "loud", "json"); err == nil {
		t.Fatal("unknown level accepted")
	}
	if _, err := New(nil, "info", "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestSamplerEveryN(t *testing.T) {
	s := NewSampler(4)
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, s.Allow())
	}
	want := []bool{true, false, false, false, true, false, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Allow sequence %v, want %v", got, want)
		}
	}
	if s.Count() != 9 {
		t.Fatalf("Count = %d, want 9", s.Count())
	}
}

func TestSamplerNilAndOne(t *testing.T) {
	var nilS *Sampler
	if !nilS.Allow() || nilS.Count() != 0 {
		t.Fatal("nil sampler must admit everything")
	}
	one := NewSampler(0)
	for i := 0; i < 3; i++ {
		if !one.Allow() {
			t.Fatal("every<1 sampler must admit everything")
		}
	}
}

func TestSamplerConcurrent(t *testing.T) {
	s := NewSampler(10)
	const goroutines, each = 8, 1000
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if s.Allow() {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != goroutines*each/10 {
		t.Fatalf("admitted %d of %d, want exactly 1 in 10", got, goroutines*each)
	}
}
