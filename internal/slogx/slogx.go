// Package slogx is the one place the floorplan tools configure structured
// logging: a log/slog handler factory shared by all four CLIs (fpopt,
// fpgen, fpbench, fpserve) so -log-level and -log-format mean the same
// thing everywhere, plus a lock-free sampler for debug records on
// high-volume paths (load shedding, retries) where logging every event
// would melt the very request path being observed.
//
// The default output is single-line JSON records — one access-log record
// per served request is the serving layer's contract — with "text" as the
// human-friendly alternative for interactive runs.
package slogx

import (
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// ParseLevel maps a -log-level flag value to a slog.Level. The empty
// string means Info.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("slogx: unknown log level %q (want debug, info, warn or error)", s)
}

// New builds a logger writing to w. format is "json" (the default; one
// structured record per line) or "text" (slog's key=value form); level is
// parsed by ParseLevel.
func New(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "", "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("slogx: unknown log format %q (want json or text)", format)
}

// Sampler admits every Nth event, starting with the first — the standard
// compromise for debug records on shed/retry storms: the first occurrence
// is always visible, sustained storms cost one record per N. A nil Sampler
// admits everything; all methods are safe for concurrent use.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler admitting one event in every (values below
// 1 are treated as 1, i.e. no sampling).
func NewSampler(every int) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: uint64(every)}
}

// Allow reports whether this event is one of the sampled ones.
func (s *Sampler) Allow() bool {
	if s == nil {
		return true
	}
	return (s.n.Add(1)-1)%s.every == 0
}

// Count returns how many events were offered so far (admitted or not),
// which sampled log records should carry so readers can recover rates.
func (s *Sampler) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.n.Load()
}
