// Package memtrack counts stored implementations during a floorplan
// optimization run. The paper's M column is "the maximum number of
// implementations ever stored in memory during the computation"; its
// machine aborted somewhere above ~8·10^5 of them on the large examples
// (Tables 3–4 report "> 806553" style rows). A Tracker reproduces both: it
// records the peak count and, when a hard limit is set, fails the run the
// moment the count would exceed it.
//
// The Tracker is safe for concurrent use: the parallel evaluator's workers
// all admit and release against one shared instance. Admission is
// reservation-based — an Add that would push the stored count past the
// limit is rejected *without* admitting anything, so the current count
// never exceeds the limit no matter how many goroutines race. The would-be
// count of every rejected Add is still recorded so Peak can report the
// paper's "> limit" value after a failure.
package memtrack

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrLimit is reported (wrapped) when an allocation would push the stored
// implementation count beyond the configured limit — the reproduction of
// "[9] failed to run due to insufficient memory space".
var ErrLimit = errors.New("memtrack: implementation storage limit exceeded")

// Tracker counts currently stored and peak stored implementations.
// The zero Tracker is ready to use, unlimited, and safe for concurrent use.
type Tracker struct {
	current atomic.Int64
	// peak is the maximum ever *admitted*; with a limit set it never
	// exceeds the limit.
	peak atomic.Int64
	// overPeak is the maximum would-be count of any rejected Add — the
	// value behind the paper's "> M" rows. Zero until an Add fails.
	overPeak atomic.Int64
	// casRetries counts failed compare-and-swap attempts in Add/Release —
	// the contention signal telemetry reports as reservation pressure.
	casRetries atomic.Int64
	// denials counts Adds rejected at the limit.
	denials atomic.Int64
	limit   int64
}

// NewTracker returns a tracker that fails any Add pushing the current count
// above limit; limit <= 0 means unlimited.
func NewTracker(limit int64) *Tracker {
	return &Tracker{limit: limit}
}

// Add records n newly stored implementations. If a limit is configured and
// would be exceeded, nothing is admitted — the current count is unchanged,
// so concurrent callers can never over-admit past the limit — and an error
// wrapping ErrLimit is returned. The would-be count is retained for Peak's
// "> limit" reporting.
func (t *Tracker) Add(n int64) error {
	if n < 0 {
		return fmt.Errorf("memtrack: negative Add(%d)", n)
	}
	for {
		cur := t.current.Load()
		next := cur + n
		if t.limit > 0 && next > t.limit {
			bumpMax(&t.overPeak, next)
			t.denials.Add(1)
			return fmt.Errorf("%w: %d stored > limit %d", ErrLimit, next, t.limit)
		}
		if t.current.CompareAndSwap(cur, next) {
			bumpMax(&t.peak, next)
			return nil
		}
		t.casRetries.Add(1)
	}
}

// Release records n implementations freed (e.g. discarded by a selection
// pass or a transient candidate buffer being dropped).
func (t *Tracker) Release(n int64) error {
	if n < 0 {
		return fmt.Errorf("memtrack: negative Release(%d)", n)
	}
	for {
		cur := t.current.Load()
		if n > cur {
			return fmt.Errorf("memtrack: releasing %d with only %d stored", n, cur)
		}
		if t.current.CompareAndSwap(cur, cur-n) {
			return nil
		}
		t.casRetries.Add(1)
	}
}

// bumpMax raises v to at least x.
func bumpMax(v *atomic.Int64, x int64) {
	for {
		old := v.Load()
		if x <= old || v.CompareAndSwap(old, x) {
			return
		}
	}
}

// Current returns the number of implementations stored right now. With a
// limit configured this is never above the limit.
func (t *Tracker) Current() int64 { return t.current.Load() }

// Peak returns the paper's M: the maximum ever stored, or — after a failed
// Add — the maximum count ever *attempted*, so failed runs report the
// "> limit" value the paper's tables use.
func (t *Tracker) Peak() int64 {
	p := t.peak.Load()
	if op := t.overPeak.Load(); op > p {
		p = op
	}
	return p
}

// Admitted returns the maximum count ever actually admitted. With a limit
// set this never exceeds the limit, even after failed Adds — the invariant
// behind "never over-admit" under concurrency.
func (t *Tracker) Admitted() int64 { return t.peak.Load() }

// Limit returns the configured limit (0 = unlimited).
func (t *Tracker) Limit() int64 { return t.limit }

// Exceeded reports whether any admission attempt has passed the limit.
func (t *Tracker) Exceeded() bool { return t.limit > 0 && t.Peak() > t.limit }

// CASRetries returns the number of failed compare-and-swap attempts across
// Add and Release — a measure of reservation contention under the parallel
// evaluator. Inherently nondeterministic; telemetry files it under the
// runtime section.
func (t *Tracker) CASRetries() int64 { return t.casRetries.Load() }

// Denials returns the number of admissions rejected at the limit.
func (t *Tracker) Denials() int64 { return t.denials.Load() }
