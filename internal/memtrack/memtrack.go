// Package memtrack counts stored implementations during a floorplan
// optimization run. The paper's M column is "the maximum number of
// implementations ever stored in memory during the computation"; its
// machine aborted somewhere above ~8·10^5 of them on the large examples
// (Tables 3–4 report "> 806553" style rows). A Tracker reproduces both: it
// records the peak count and, when a hard limit is set, fails the run the
// moment the count would exceed it.
package memtrack

import (
	"errors"
	"fmt"
)

// ErrLimit is reported (wrapped) when an allocation would push the stored
// implementation count beyond the configured limit — the reproduction of
// "[9] failed to run due to insufficient memory space".
var ErrLimit = errors.New("memtrack: implementation storage limit exceeded")

// Tracker counts currently stored and peak stored implementations.
// The zero Tracker is ready to use and unlimited.
type Tracker struct {
	current int64
	peak    int64
	limit   int64
}

// NewTracker returns a tracker that fails any Add pushing the current count
// above limit; limit <= 0 means unlimited.
func NewTracker(limit int64) *Tracker {
	return &Tracker{limit: limit}
}

// Add records n newly stored implementations. If a limit is configured and
// would be exceeded, the count is left at the would-be value (so the caller
// can report "> limit" like the paper) and an error wrapping ErrLimit is
// returned.
func (t *Tracker) Add(n int64) error {
	if n < 0 {
		return fmt.Errorf("memtrack: negative Add(%d)", n)
	}
	t.current += n
	if t.current > t.peak {
		t.peak = t.current
	}
	if t.limit > 0 && t.current > t.limit {
		return fmt.Errorf("%w: %d stored > limit %d", ErrLimit, t.current, t.limit)
	}
	return nil
}

// Release records n implementations freed (e.g. discarded by a selection
// pass or a transient candidate buffer being dropped).
func (t *Tracker) Release(n int64) error {
	if n < 0 {
		return fmt.Errorf("memtrack: negative Release(%d)", n)
	}
	if n > t.current {
		return fmt.Errorf("memtrack: releasing %d with only %d stored", n, t.current)
	}
	t.current -= n
	return nil
}

// Current returns the number of implementations stored right now.
func (t *Tracker) Current() int64 { return t.current }

// Peak returns the paper's M: the maximum ever stored.
func (t *Tracker) Peak() int64 { return t.peak }

// Limit returns the configured limit (0 = unlimited).
func (t *Tracker) Limit() int64 { return t.limit }

// Exceeded reports whether the peak has passed the limit.
func (t *Tracker) Exceeded() bool { return t.limit > 0 && t.peak > t.limit }
