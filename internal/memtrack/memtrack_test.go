package memtrack

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestZeroTrackerUnlimited(t *testing.T) {
	var tr Tracker
	if err := tr.Add(1 << 40); err != nil {
		t.Fatal(err)
	}
	if tr.Peak() != 1<<40 || tr.Current() != 1<<40 {
		t.Fatalf("peak=%d current=%d", tr.Peak(), tr.Current())
	}
	if tr.Exceeded() {
		t.Error("unlimited tracker cannot be exceeded")
	}
}

func TestPeakTracksMaximum(t *testing.T) {
	tr := NewTracker(0)
	mustAdd := func(n int64) {
		t.Helper()
		if err := tr.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(100)
	if err := tr.Release(40); err != nil {
		t.Fatal(err)
	}
	mustAdd(30)
	if tr.Current() != 90 {
		t.Errorf("current = %d, want 90", tr.Current())
	}
	if tr.Peak() != 100 {
		t.Errorf("peak = %d, want 100", tr.Peak())
	}
	mustAdd(50)
	if tr.Peak() != 140 {
		t.Errorf("peak = %d, want 140", tr.Peak())
	}
}

func TestLimitEnforced(t *testing.T) {
	tr := NewTracker(100)
	if err := tr.Add(100); err != nil {
		t.Fatalf("at-limit Add should succeed: %v", err)
	}
	err := tr.Add(1)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("over-limit Add = %v, want ErrLimit", err)
	}
	if !tr.Exceeded() {
		t.Error("Exceeded should be true after a failed Add")
	}
	if tr.Peak() != 101 {
		t.Errorf("peak = %d: the over-limit value must be recorded for '>' reporting", tr.Peak())
	}
	if tr.Limit() != 100 {
		t.Errorf("limit = %d", tr.Limit())
	}
}

// TestConcurrentNeverOverAdmits hammers a limited tracker from many
// goroutines and checks the reservation invariant: the admitted count never
// exceeds the limit at any observed moment, while rejected attempts still
// surface in Peak for "> limit" reporting. Run with -race.
func TestConcurrentNeverOverAdmits(t *testing.T) {
	const limit = 1000
	tr := NewTracker(limit)
	var wg sync.WaitGroup
	var observedMax atomic.Int64
	var failures atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := int64(1 + (g+i)%37)
				if err := tr.Add(n); err != nil {
					if !errors.Is(err, ErrLimit) {
						t.Errorf("unexpected Add error: %v", err)
						return
					}
					failures.Add(1)
					// Make room so other goroutines keep exercising both paths.
					for tr.Current() > limit/2 {
						if err := tr.Release(1); err != nil {
							break
						}
					}
					continue
				}
				if cur := tr.Current(); cur > limit {
					t.Errorf("over-admitted: current %d > limit %d", cur, limit)
					return
				}
				for {
					old := observedMax.Load()
					cur := tr.Admitted()
					if cur <= old || observedMax.CompareAndSwap(old, cur) {
						break
					}
				}
				if i%3 == 0 {
					_ = tr.Release(n)
				}
			}
		}(g)
	}
	wg.Wait()
	if observedMax.Load() > limit {
		t.Fatalf("admitted peak %d exceeds limit %d", observedMax.Load(), limit)
	}
	if tr.Admitted() > limit {
		t.Fatalf("Admitted() = %d exceeds limit %d", tr.Admitted(), limit)
	}
	if failures.Load() > 0 && tr.Peak() <= limit {
		t.Fatalf("Peak() = %d should report the over-limit attempt", tr.Peak())
	}
}

func TestReleaseValidation(t *testing.T) {
	tr := NewTracker(0)
	if err := tr.Add(10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Release(20); err == nil {
		t.Error("releasing more than stored should fail")
	}
	if err := tr.Release(-1); err == nil {
		t.Error("negative release should fail")
	}
	if err := tr.Add(-1); err == nil {
		t.Error("negative add should fail")
	}
}
