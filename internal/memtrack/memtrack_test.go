package memtrack

import (
	"errors"
	"testing"
)

func TestZeroTrackerUnlimited(t *testing.T) {
	var tr Tracker
	if err := tr.Add(1 << 40); err != nil {
		t.Fatal(err)
	}
	if tr.Peak() != 1<<40 || tr.Current() != 1<<40 {
		t.Fatalf("peak=%d current=%d", tr.Peak(), tr.Current())
	}
	if tr.Exceeded() {
		t.Error("unlimited tracker cannot be exceeded")
	}
}

func TestPeakTracksMaximum(t *testing.T) {
	tr := NewTracker(0)
	mustAdd := func(n int64) {
		t.Helper()
		if err := tr.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(100)
	if err := tr.Release(40); err != nil {
		t.Fatal(err)
	}
	mustAdd(30)
	if tr.Current() != 90 {
		t.Errorf("current = %d, want 90", tr.Current())
	}
	if tr.Peak() != 100 {
		t.Errorf("peak = %d, want 100", tr.Peak())
	}
	mustAdd(50)
	if tr.Peak() != 140 {
		t.Errorf("peak = %d, want 140", tr.Peak())
	}
}

func TestLimitEnforced(t *testing.T) {
	tr := NewTracker(100)
	if err := tr.Add(100); err != nil {
		t.Fatalf("at-limit Add should succeed: %v", err)
	}
	err := tr.Add(1)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("over-limit Add = %v, want ErrLimit", err)
	}
	if !tr.Exceeded() {
		t.Error("Exceeded should be true after a failed Add")
	}
	if tr.Peak() != 101 {
		t.Errorf("peak = %d: the over-limit value must be recorded for '>' reporting", tr.Peak())
	}
	if tr.Limit() != 100 {
		t.Errorf("limit = %d", tr.Limit())
	}
}

func TestReleaseValidation(t *testing.T) {
	tr := NewTracker(0)
	if err := tr.Add(10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Release(20); err == nil {
		t.Error("releasing more than stored should fail")
	}
	if err := tr.Release(-1); err == nil {
		t.Error("negative release should fail")
	}
	if err := tr.Add(-1); err == nil {
		t.Error("negative add should fail")
	}
}
