package floorplan

import (
	"encoding/json"
	"fmt"

	"floorplan/internal/shape"
)

// EncodeLibrary serializes a module library as indented JSON, the format
// fpgen emits and fpopt consumes:
//
//	{"cpu": [{"W":4,"H":7},{"W":7,"H":4}], …}
//
// Each list is canonicalized (redundant implementations pruned, staircase
// order) before encoding, so the file round-trips bit-exactly.
func EncodeLibrary(lib Library) ([]byte, error) {
	canonical := make(map[string][]Impl, len(lib))
	for name, impls := range lib {
		l, err := shape.NewRList(impls)
		if err != nil {
			return nil, fmt.Errorf("floorplan: module %q: %w", name, err)
		}
		canonical[name] = []Impl(l)
	}
	return json.MarshalIndent(canonical, "", "  ")
}

// ParseLibrary decodes a module library from JSON and validates it: every
// module must have at least one implementation with positive extents.
func ParseLibrary(data []byte) (Library, error) {
	var lib Library
	if err := json.Unmarshal(data, &lib); err != nil {
		return nil, fmt.Errorf("floorplan: decoding library: %w", err)
	}
	for name, impls := range lib {
		if len(impls) == 0 {
			return nil, fmt.Errorf("floorplan: module %q has no implementations", name)
		}
		l, err := shape.NewRList(impls)
		if err != nil {
			return nil, fmt.Errorf("floorplan: module %q: %w", name, err)
		}
		lib[name] = []Impl(l)
	}
	return lib, nil
}
