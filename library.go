package floorplan

import (
	"floorplan/internal/plan"
)

// EncodeLibrary serializes a module library as indented JSON, the format
// fpgen emits and fpopt/fpserve consume:
//
//	{"cpu": [{"W":4,"H":7},{"W":7,"H":4}], …}
//
// Each list is canonicalized (redundant implementations pruned, staircase
// order) before encoding, so the file round-trips bit-exactly. Encoding and
// decoding share one validation path (plan.CanonicalModule), so a library
// that encodes always parses back and vice versa.
func EncodeLibrary(lib Library) ([]byte, error) {
	return plan.EncodeLibrary(plan.Library(lib))
}

// ParseLibrary decodes a module library from JSON and validates it: every
// module must have at least one implementation with positive extents. The
// returned lists are canonical.
func ParseLibrary(data []byte) (Library, error) {
	l, err := plan.ParseLibrary(data)
	if err != nil {
		return nil, err
	}
	return Library(l), nil
}
