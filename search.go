package floorplan

import (
	"floorplan/internal/optimizer"
	"floorplan/internal/search"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
)

// SearchOptions configures SearchTopology.
type SearchOptions struct {
	// Seed makes the search reproducible.
	Seed int64
	// Iterations is the number of annealing steps (default 200).
	Iterations int
	// Selection speeds up the inner area optimizations (default K1=8).
	Selection Selection
	// Workers bounds how many candidate topologies are evaluated
	// concurrently per annealing batch (0 = one per CPU). Workers == 1 is
	// the classic sequential annealer; larger counts evaluate speculative
	// batches in parallel with deterministic, seed-reproducible acceptance
	// (the trajectory depends on the worker count).
	Workers int
	// Telemetry, when non-nil, records per-move accept/reject counters,
	// candidate evaluation times and per-batch spans (with the annealing
	// temperature); nil disables collection.
	Telemetry *Collector
}

// SearchResult is the outcome of SearchTopology.
type SearchResult struct {
	// Best is the best topology found; optimize it again (possibly without
	// selection) for the final placement.
	Best *Tree
	// BestArea and InitialArea are the optimizer areas under the search's
	// selection policy.
	BestArea, InitialArea int64
	// Proposed, Accepted, Improved count annealing moves.
	Proposed, Accepted, Improved int
}

// SearchTopology improves a floorplan topology by simulated annealing,
// evaluating every candidate with the area optimizer. This is the design
// step *upstream* of the paper's problem: the paper optimizes shapes for a
// fixed topology; here the topology itself moves, and the paper's
// R_Selection keeps each inner evaluation fast.
func SearchTopology(tree *Tree, lib Library, opts SearchOptions) (*SearchResult, error) {
	canonical := make(optimizer.Library, len(lib))
	for name, impls := range lib {
		l, err := shape.NewRList(impls)
		if err != nil {
			return nil, err
		}
		canonical[name] = l
	}
	res, err := search.Anneal(tree, canonical, search.Options{
		Seed:       opts.Seed,
		Iterations: opts.Iterations,
		Workers:    opts.Workers,
		Telemetry:  opts.Telemetry,
		Policy: selection.Policy{
			K1:    opts.Selection.K1,
			K2:    opts.Selection.K2,
			Theta: opts.Selection.Theta,
			S:     opts.Selection.S,
		},
	})
	if err != nil {
		return nil, err
	}
	return &SearchResult{
		Best:        res.Best,
		BestArea:    res.BestArea,
		InitialArea: res.InitialArea,
		Proposed:    res.Proposed,
		Accepted:    res.Accepted,
		Improved:    res.Improved,
	}, nil
}
