package floorplan_test

import (
	"strings"
	"testing"

	floorplan "floorplan"
)

func pinwheelFixture() (*floorplan.Tree, floorplan.Library) {
	tree := floorplan.Wheel(
		floorplan.Leaf("nw"), floorplan.Leaf("ne"), floorplan.Leaf("se"),
		floorplan.Leaf("sw"), floorplan.Leaf("c"))
	lib := floorplan.Library{
		"nw": {{W: 4, H: 7}},
		"ne": {{W: 6, H: 4}},
		"se": {{W: 3, H: 6}},
		"sw": {{W: 7, H: 3}},
		"c":  {{W: 3, H: 3}},
	}
	return tree, lib
}

func TestOptimizeQuickstart(t *testing.T) {
	tree, lib := pinwheelFixture()
	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != (floorplan.Impl{W: 10, H: 10}) {
		t.Fatalf("Best = %v", res.Best)
	}
	if res.Placement == nil || len(res.Placement.Modules) != 5 {
		t.Fatalf("Placement = %+v", res.Placement)
	}
	if len(res.RootList) == 0 {
		t.Fatal("empty root list")
	}
}

func TestOptimizeCanonicalizesLibrary(t *testing.T) {
	tree := floorplan.Leaf("m")
	// Unordered, redundant input list.
	lib := floorplan.Library{"m": {{W: 2, H: 9}, {W: 5, H: 5}, {W: 9, H: 2}, {W: 6, H: 6}}}
	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != (floorplan.Impl{W: 9, H: 2}) { // area 18 beats (5,5)=25
		t.Fatalf("Best = %v", res.Best)
	}
	if len(res.RootList) != 3 {
		t.Fatalf("redundant (6,6) not pruned: %v", res.RootList)
	}
	// Invalid implementations are rejected.
	if _, err := floorplan.Optimize(tree, floorplan.Library{"m": {{W: 0, H: 1}}}, floorplan.Options{}); err == nil {
		t.Fatal("invalid library accepted")
	}
}

func TestOptimizeWithSelectionAndLimit(t *testing.T) {
	tree, err := floorplan.PaperFloorplan("FP1")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := floorplan.RandomModules(tree, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := floorplan.Optimize(tree, lib, floorplan.Options{SkipPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := floorplan.Optimize(tree, lib, floorplan.Options{
		Selection:     floorplan.Selection{K1: 8, K2: 60, Theta: 0.5, S: 200},
		SkipPlacement: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Stats.PeakStored >= exact.Stats.PeakStored {
		t.Fatalf("selection did not save memory: %d vs %d", sel.Stats.PeakStored, exact.Stats.PeakStored)
	}
	if sel.Best.Area() < exact.Best.Area() {
		t.Fatal("selection cannot improve the optimum")
	}
	// Memory limit reproduces the paper's failures.
	_, err = floorplan.Optimize(tree, lib, floorplan.Options{MemoryLimit: 100, SkipPlacement: true})
	if err == nil || !floorplan.IsMemoryLimit(err) {
		t.Fatalf("expected memory-limit failure, got %v", err)
	}
}

func TestSelectImpls(t *testing.T) {
	impls := []floorplan.Impl{
		{W: 12, H: 1}, {W: 10, H: 2}, {W: 8, H: 4}, {W: 6, H: 6}, {W: 4, H: 9}, {W: 2, H: 11},
	}
	sel, errArea, err := floorplan.SelectImpls(impls, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("selected %d", len(sel))
	}
	if sel[0] != impls[0] || sel[3] != impls[5] {
		t.Fatal("endpoints not kept")
	}
	if errArea < 0 {
		t.Fatal("negative error")
	}
	if _, _, err := floorplan.SelectImpls(nil, 3); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestOptimizeSlicingAndRotatable(t *testing.T) {
	tree := floorplan.HSlice(floorplan.Leaf("a"), floorplan.Leaf("b"))
	lib := floorplan.Library{
		"a": floorplan.Rotatable(4, 1),
		"b": floorplan.Rotatable(4, 1),
	}
	res, err := floorplan.OptimizeSlicing(tree, lib, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Area() != 8 {
		t.Fatalf("Best = %v", res.Best)
	}
	// Wheels are rejected by the slicing baseline.
	wheelTree, wheelLib := pinwheelFixture()
	if _, err := floorplan.OptimizeSlicing(wheelTree, wheelLib, 0); err == nil {
		t.Fatal("wheel accepted by slicing baseline")
	}
	// The general optimizer agrees on slicing input.
	gen, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Best.Area() != res.Best.Area() {
		t.Fatalf("optimizer %v != stockmeyer %v", gen.Best, res.Best)
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	tree, _ := pinwheelFixture()
	data, err := floorplan.EncodeTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := floorplan.ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ModuleCount() != 5 || back.WheelCount() != 1 {
		t.Fatalf("round trip lost structure: %d modules %d wheels", back.ModuleCount(), back.WheelCount())
	}
}

func TestRendering(t *testing.T) {
	tree, lib := pinwheelFixture()
	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	art := floorplan.RenderPlacement(res.Placement, 50)
	if !strings.Contains(art, "envelope 10x10") {
		t.Errorf("render missing header:\n%s", art)
	}
	outline := floorplan.RenderTree(tree)
	if !strings.Contains(outline, "wheel") {
		t.Errorf("tree outline:\n%s", outline)
	}
	table := floorplan.PlacementTable(res.Placement)
	if !strings.Contains(table, "whitespace 0") {
		t.Errorf("placement table:\n%s", table)
	}
}

func TestRandomGenerators(t *testing.T) {
	tree, err := floorplan.RandomTree(12, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tree.ModuleCount() != 12 {
		t.Fatalf("ModuleCount = %d", tree.ModuleCount())
	}
	lib, err := floorplan.RandomModules(tree, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 12 {
		t.Fatalf("library size %d", len(lib))
	}
	res, err := floorplan.Optimize(tree, lib, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement == nil {
		t.Fatal("no placement")
	}
	// Determinism.
	tree2, _ := floorplan.RandomTree(12, 0.5, 7)
	if tree2.ModuleCount() != tree.ModuleCount() || tree2.Depth() != tree.Depth() {
		t.Fatal("RandomTree not deterministic")
	}
}

func TestPaperFloorplans(t *testing.T) {
	for name, want := range map[string]int{"FP1": 25, "FP2": 49, "FP3": 120, "FP4": 245} {
		tree, err := floorplan.PaperFloorplan(name)
		if err != nil {
			t.Fatal(err)
		}
		if tree.ModuleCount() != want {
			t.Errorf("%s: %d modules, want %d", name, tree.ModuleCount(), want)
		}
	}
	if _, err := floorplan.PaperFloorplan("FP5"); err == nil {
		t.Error("unknown floorplan accepted")
	}
}
