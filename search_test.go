package floorplan_test

import (
	"testing"

	floorplan "floorplan"
)

func TestSearchTopology(t *testing.T) {
	tree, err := floorplan.RandomTree(12, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := floorplan.RandomModules(tree, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := floorplan.SearchTopology(tree, lib, floorplan.SearchOptions{
		Seed:       3,
		Iterations: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestArea > res.InitialArea {
		t.Fatalf("search worsened the area: %d > %d", res.BestArea, res.InitialArea)
	}
	if res.Best.ModuleCount() != 12 {
		t.Fatalf("module count changed: %d", res.Best.ModuleCount())
	}
	// The result optimizes and places cleanly.
	final, err := floorplan.Optimize(res.Best, lib, floorplan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if final.Placement == nil {
		t.Fatal("no placement for searched topology")
	}
	// Bad library is rejected.
	if _, err := floorplan.SearchTopology(tree, floorplan.Library{"m000": {{W: 0, H: 1}}}, floorplan.SearchOptions{}); err == nil {
		t.Fatal("invalid library accepted")
	}
}
