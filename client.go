package floorplan

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"floorplan/internal/plan"
	"floorplan/internal/server"
)

// Client drives a running fpserve instance over its HTTP JSON API.
// The zero value is not usable; set BaseURL (e.g. "http://localhost:8080").
type Client struct {
	// BaseURL is the server root, with or without a trailing slash.
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// ServeOptions are the per-request knobs of POST /v1/optimize.
type ServeOptions = server.RequestOptions

// ServeResponse is the optimize reply: the content-address Key, the
// deterministic Result payload (byte-identical for cached and freshly
// computed answers at any worker count) and the per-request Runtime
// envelope. Decode the payload with DecodeResult.
type ServeResponse = server.OptimizeResponse

// ServeResult is the decoded deterministic payload.
type ServeResult = server.Result

// ServeStats is the GET /v1/stats reply.
type ServeStats = server.StatsResponse

// ServeError is a non-2xx server reply; errors.As-compatible.
type ServeError = server.StatusError

// Optimize submits one optimization to the server and returns its reply.
func (c *Client) Optimize(ctx context.Context, tree *Tree, lib Library, opts ServeOptions) (*ServeResponse, error) {
	body, err := json.Marshal(&server.OptimizeRequest{
		Tree:    tree,
		Library: plan.Library(lib),
		Options: opts,
	})
	if err != nil {
		return nil, fmt.Errorf("floorplan: encoding optimize request: %w", err)
	}
	var out ServeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/optimize", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks GET /healthz; nil means the server is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*ServeStats, error) {
	var out ServeStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, rd)
	if err != nil {
		return fmt.Errorf("floorplan: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("floorplan: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("floorplan: reading %s response: %w", path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := strings.TrimSpace(string(raw))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &ServeError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("floorplan: decoding %s response: %w", path, err)
	}
	return nil
}
