package floorplan

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"floorplan/internal/plan"
	"floorplan/internal/reqid"
	"floorplan/internal/server"
	"floorplan/internal/telemetry"
)

// clientMaxResponseBytes caps how much of a response body the client reads;
// a body still flowing past it is reported as a truncation error rather
// than a misleading JSON decode failure. Variable so tests can lower it.
var clientMaxResponseBytes int64 = 64 << 20

// Client drives a running fpserve instance over its HTTP JSON API.
// The zero value is not usable; set BaseURL (e.g. "http://localhost:8080").
type Client struct {
	// BaseURL is the server root, with or without a trailing slash.
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Retry governs automatic retries of retryable failures: 429 and 503
	// replies (the server's load-shedding and deadline answers, which ask
	// for exactly this) and transport errors where no response arrived.
	// Other statuses and body-read failures are never retried. The zero
	// value disables retries.
	Retry RetryPolicy
	// Telemetry counts request attempts and retries under the runtime
	// counters client.attempts and client.retries; nil disables recording.
	Telemetry *Collector
	// Logger receives debug records for each retry (trace ID, attempt
	// number, drawn delay); nil disables.
	Logger *slog.Logger
}

// RetryPolicy configures the client's retry loop: bounded attempts with
// exponential backoff and full jitter, honoring server Retry-After hints.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first try;
	// values below 2 disable retries.
	MaxAttempts int
	// BaseDelay seeds the backoff envelope (0 = 100ms). Before retry n
	// (n = 1, 2, ...) the client sleeps a uniformly random duration in
	// [0, min(MaxDelay, BaseDelay·2ⁿ⁻¹)] — "full jitter", so a thundering
	// herd of shed clients spreads out instead of returning in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps the backoff envelope (0 = 5s). A server Retry-After
	// hint larger than the drawn delay overrides it: the server knows its
	// queue better than the client's clock does.
	MaxDelay time.Duration
}

// attempts returns the effective total attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 2 {
		return 1
	}
	return p.MaxAttempts
}

// backoff draws the sleep before the retry following attempt (0-based),
// honoring the server's Retry-After hint when it asks for longer.
func (p RetryPolicy) backoff(attempt int, hint time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	envelope := base << uint(attempt)
	if envelope > max || envelope <= 0 { // <= 0: shift overflow
		envelope = max
	}
	d := time.Duration(rand.Int63n(int64(envelope) + 1))
	if hint > d {
		d = hint
	}
	return d
}

// ServeOptions are the per-request knobs of POST /v1/optimize.
type ServeOptions = server.RequestOptions

// ServeResponse is the optimize reply: the content-address Key, the
// deterministic Result payload (byte-identical for cached and freshly
// computed answers at any worker count) and the per-request Runtime
// envelope. Decode the payload with DecodeResult.
type ServeResponse = server.OptimizeResponse

// ServeResult is the decoded deterministic payload.
type ServeResult = server.Result

// ServeStats is the GET /v1/stats reply.
type ServeStats = server.StatsResponse

// ClusterStats is the GET /v1/cluster/stats reply: the ring-wide aggregate
// one node assembles by fanning out to its peers.
type ClusterStats = server.ClusterStatsResponse

// ServeError is a non-2xx server reply; errors.As-compatible. Its
// RetryAfter field carries the server's hint on 429/503 answers.
type ServeError = server.StatusError

// Optimize submits one optimization to the server and returns its reply.
func (c *Client) Optimize(ctx context.Context, tree *Tree, lib Library, opts ServeOptions) (*ServeResponse, error) {
	body, err := json.Marshal(&server.OptimizeRequest{
		Tree:    tree,
		Library: plan.Library(lib),
		Options: opts,
	})
	if err != nil {
		return nil, fmt.Errorf("floorplan: encoding optimize request: %w", err)
	}
	var out ServeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/optimize", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks GET /healthz; nil means the server is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*ServeStats, error) {
	var out ServeStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterStats fetches GET /v1/cluster/stats: the addressed node fans out to
// every ring peer and aggregates. An unreachable peer yields a partial
// response with Incomplete set, not an error.
func (c *Client) ClusterStats(ctx context.Context) (*ClusterStats, error) {
	var out ClusterStats
	if err := c.do(ctx, http.MethodGet, "/v1/cluster/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do runs the retry loop around single attempts. Every optimize request is
// idempotent on the server (content-addressed, deterministic), so the only
// retry-safety question is whether a response was already being consumed.
//
// All attempts of one call share a single W3C trace — taken from the
// caller's context (WithTraceparent) or minted here — with a fresh span per
// attempt, so the server's access log strings the retries of one logical
// request together.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	trace, ok := reqid.FromContext(ctx)
	if !ok || !trace.Valid() {
		trace = reqid.New()
	}
	attempts := c.Retry.attempts()
	for attempt := 0; ; attempt++ {
		c.Telemetry.Inc(telemetry.CtrClientAttempts)
		span := trace
		if attempt > 0 {
			span = trace.Child()
		}
		retryable, hint, err := c.attempt(ctx, method, path, body, out, span)
		if err == nil {
			return nil
		}
		if !retryable || attempt+1 >= attempts || ctx.Err() != nil {
			return err
		}
		c.Telemetry.Inc(telemetry.CtrClientRetries)
		backoff := c.Retry.backoff(attempt, hint)
		if c.Logger != nil {
			c.Logger.Debug("retrying request",
				slog.String("method", method),
				slog.String("path", path),
				slog.String("trace_id", trace.TraceID.String()),
				slog.Int("attempt", attempt+1),
				slog.Float64("delay_ms", float64(backoff.Nanoseconds())/1e6),
				slog.String("error", err.Error()))
		}
		delay := time.NewTimer(backoff)
		select {
		case <-delay.C:
		case <-ctx.Done():
			delay.Stop()
			return err
		}
	}
}

// attempt performs one HTTP round trip. retryable is true only for
// idempotent-safe failures: a transport error before any response arrived,
// or a 429/503 reply (whose Retry-After hint is returned alongside).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any, trace reqid.Context) (retryable bool, hint time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, rd)
	if err != nil {
		return false, 0, fmt.Errorf("floorplan: building request: %w", err)
	}
	if trace.Valid() {
		req.Header.Set("traceparent", trace.Traceparent())
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		// No response was consumed; resending is safe (do's ctx check
		// stops the loop when the failure was a context cancellation).
		return true, 0, fmt.Errorf("floorplan: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, clientMaxResponseBytes+1))
	if err != nil {
		return false, 0, fmt.Errorf("floorplan: reading %s response: %w", path, err)
	}
	if int64(len(raw)) > clientMaxResponseBytes {
		return false, 0, fmt.Errorf("floorplan: %s response exceeds the %d-byte client limit", path, clientMaxResponseBytes)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := strings.TrimSpace(string(raw))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		se := &ServeError{
			Code:       resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		retryable = se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable
		return retryable, se.RetryAfter, se
	}
	if out == nil {
		return false, 0, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, 0, fmt.Errorf("floorplan: decoding %s response: %w", path, err)
	}
	return false, 0, nil
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form —
// delay seconds or an HTTP-date — returning 0 when absent or malformed.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(h, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}
