package floorplan_test

import (
	"strings"
	"testing"

	floorplan "floorplan"
)

func TestLibraryRoundTrip(t *testing.T) {
	lib := floorplan.Library{
		"cpu": {{W: 4, H: 7}, {W: 7, H: 4}, {W: 7, H: 7}}, // (7,7) redundant
		"pll": {{W: 3, H: 3}},
	}
	data, err := floorplan.EncodeLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	back, err := floorplan.ParseLibrary(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("%d modules", len(back))
	}
	if len(back["cpu"]) != 2 {
		t.Fatalf("redundant implementation survived: %v", back["cpu"])
	}
	// Round trip is now a fixed point.
	data2, err := floorplan.EncodeLibrary(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("encode/parse/encode not a fixed point")
	}
}

func TestParseLibraryErrors(t *testing.T) {
	cases := []string{
		`{`,                      // malformed
		`{"m": []}`,              // empty list
		`{"m": [{"W":0,"H":1}]}`, // invalid implementation
	}
	for _, c := range cases {
		if _, err := floorplan.ParseLibrary([]byte(c)); err == nil {
			t.Errorf("ParseLibrary(%q) succeeded", c)
		}
	}
}

func TestEncodeLibraryRejectsInvalid(t *testing.T) {
	if _, err := floorplan.EncodeLibrary(floorplan.Library{"m": {{W: -1, H: 1}}}); err == nil {
		t.Error("invalid library encoded")
	}
}

func TestLibraryInteropWithGenerators(t *testing.T) {
	tree, err := floorplan.PaperFloorplan("FP1")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := floorplan.RandomModules(tree, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	data, err := floorplan.EncodeLibrary(lib)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "m000") {
		t.Fatal("module names missing from encoding")
	}
	back, err := floorplan.ParseLibrary(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := floorplan.Optimize(tree, lib, floorplan.Options{SkipPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := floorplan.Optimize(tree, back, floorplan.Options{SkipPlacement: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best {
		t.Fatalf("round-tripped library changed the optimum: %v vs %v", a.Best, b.Best)
	}
}
