package floorplan

import (
	"fmt"
	"math"

	"floorplan/internal/selection"
	"floorplan/internal/shape"
)

// SampleShapeCurve samples the continuous shape function of a soft macro —
// any rectangle with w·h >= area whose aspect ratio w/h stays within
// [1/maxAspect, maxAspect] — at n integer points. Section 6 of the paper
// describes exactly this workflow for modules with infinitely many
// implementations: sample the curve densely, then cut the list down with
// R_Selection (SelectImpls / SelectImplsBudget).
func SampleShapeCurve(area int64, maxAspect float64, n int) ([]Impl, error) {
	if area < 1 {
		return nil, fmt.Errorf("floorplan: area must be >= 1, got %d", area)
	}
	if maxAspect < 1 {
		return nil, fmt.Errorf("floorplan: maxAspect must be >= 1, got %v", maxAspect)
	}
	if n < 1 {
		return nil, fmt.Errorf("floorplan: need n >= 1 samples, got %d", n)
	}
	side := math.Sqrt(float64(area))
	wMin := int64(math.Floor(side / math.Sqrt(maxAspect)))
	wMax := int64(math.Ceil(side * math.Sqrt(maxAspect)))
	if wMin < 1 {
		wMin = 1
	}
	if wMax < wMin {
		wMax = wMin
	}
	impls := make([]Impl, 0, n)
	for i := 0; i < n; i++ {
		var w int64
		if n == 1 {
			w = (wMin + wMax) / 2
		} else {
			w = wMin + (wMax-wMin)*int64(i)/int64(n-1)
		}
		h := (area + w - 1) / w // smallest h with w*h >= area
		impls = append(impls, Impl{W: w, H: h})
	}
	l, err := shape.NewRList(impls)
	if err != nil {
		return nil, err
	}
	return []Impl(l), nil
}

// SelectionPoint is one point of a block's error-vs-k trade-off curve.
type SelectionPoint = selection.SweepPoint

// SelectionCurve computes, in a single dynamic program, the optimal
// staircase error of keeping exactly k implementations for every
// k in [2, kmax] — the full trade-off curve behind R_Selection.
func SelectionCurve(impls []Impl, kmax int) ([]SelectionPoint, error) {
	l, err := shape.NewRList(impls)
	if err != nil {
		return nil, err
	}
	return selection.RSweep(l, kmax)
}

// SelectImplsBudget keeps the smallest subset of implementations whose
// staircase error stays within budget — the error-budget dual of the
// paper's fixed-K limit.
func SelectImplsBudget(impls []Impl, budget int64) ([]Impl, int64, error) {
	l, err := shape.NewRList(impls)
	if err != nil {
		return nil, 0, err
	}
	res, err := selection.RSelectBudget(l, budget)
	if err != nil {
		return nil, 0, err
	}
	return []Impl(res.Selected), res.Error, nil
}

// Grid builds an m×n slicing floorplan of fresh leaves named by fn(row,
// col): rows are stacked bottom to top, columns placed left to right within
// each row. (A grid of slicing rows is itself slicing; the classic
// non-slicing grid with aligned crossings cannot be expressed as a
// floorplan tree.)
func Grid(rows, cols int, fn func(r, c int) string) (*Tree, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("floorplan: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	if fn == nil {
		fn = func(r, c int) string { return fmt.Sprintf("m%d_%d", r, c) }
	}
	makeRow := func(r int) *Tree {
		if cols == 1 {
			return Leaf(fn(r, 0))
		}
		kids := make([]*Tree, cols)
		for c := 0; c < cols; c++ {
			kids[c] = Leaf(fn(r, c))
		}
		return VSlice(kids...)
	}
	if rows == 1 {
		return makeRow(0), nil
	}
	rws := make([]*Tree, rows)
	for r := 0; r < rows; r++ {
		rws[r] = makeRow(r)
	}
	return HSlice(rws...), nil
}
