// Benchmark harness regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the core algorithms and this
// repository's ablations.
//
// The table benchmarks each run one full paper table (four cases, every
// selection configuration) per iteration; they take tens of seconds to a
// few minutes, so run them with an explicit count and a generous timeout:
//
//	go test -bench=Table -benchtime=1x -timeout=120m
//
// The regenerated tables print to stderr on -v; `fpbench -table N` produces
// the same output interactively.
package floorplan_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	floorplan "floorplan"
	"floorplan/internal/cspp"
	"floorplan/internal/gen"
	"floorplan/internal/selection"
	"floorplan/internal/shape"
	"floorplan/internal/tables"
)

// benchTable regenerates one paper table per iteration and reports the
// paper's M metric for the first row as a benchmark metric.
func benchTable(b *testing.B, number int) {
	cfg := tables.DefaultConfig()
	for i := 0; i < b.N; i++ {
		t, err := tables.Run(number, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Fprintln(os.Stderr, t.Format())
			reportTableMetrics(b, t)
		}
	}
}

func reportTableMetrics(b *testing.B, t *tables.Table) {
	var refM, selM int64
	var selRuns int64
	for _, row := range t.Rows {
		refM += row.Ref.M
		for _, s := range row.Sel {
			selM += s.Out.M
			selRuns++
		}
	}
	b.ReportMetric(float64(refM)/float64(len(t.Rows)), "ref-M/case")
	if selRuns > 0 {
		b.ReportMetric(float64(selM)/float64(selRuns), "sel-M/run")
	}
}

// BenchmarkTable1 regenerates Table 1: FP1 (25 modules), plain [9] vs
// [9]+R_Selection at K1 ∈ {20,30,40} / {40,50,60}.
func BenchmarkTable1(b *testing.B) { benchTable(b, 1) }

// BenchmarkTable2 regenerates Table 2: FP2 (49 modules).
func BenchmarkTable2(b *testing.B) { benchTable(b, 2) }

// BenchmarkTable3 regenerates Table 3: FP3 (120 modules), where plain [9]
// runs out of memory on cases 2–4.
func BenchmarkTable3(b *testing.B) { benchTable(b, 3) }

// BenchmarkTable4 regenerates Table 4: FP4 (245 modules), where plain [9]
// always fails, R_Selection alone fails on cases 3–4, and
// R_Selection+L_Selection (K2 ∈ {1000,1500,2000}) completes every case.
func BenchmarkTable4(b *testing.B) { benchTable(b, 4) }

// BenchmarkAblationUniformVsOptimal quantifies the CSPP-optimal selection
// against naive uniform subsampling (this repository's ablation; the
// paper's Figure 5–7 machinery is what makes the optimal choice cheap).
func BenchmarkAblationUniformVsOptimal(b *testing.B) {
	cfg := tables.DefaultConfig()
	for i := 0; i < b.N; i++ {
		out, err := tables.AblationUniform(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Fprintln(os.Stderr, out)
		}
	}
}

// BenchmarkAblationThetaS sweeps the Section 5 speed-up knobs θ and S on
// FP4.
func BenchmarkAblationThetaS(b *testing.B) {
	cfg := tables.DefaultConfig()
	for i := 0; i < b.N; i++ {
		out, err := tables.AblationThetaS(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Fprintln(os.Stderr, out)
		}
	}
}

// BenchmarkFigure4CSPP solves the worked CSPP instance of Figure 4
// (6 vertices, k=4) — the kernel both selection algorithms reduce to.
func BenchmarkFigure4CSPP(b *testing.B) {
	g := cspp.MustGraph(6)
	edges := []struct {
		from, to int
		w        int64
	}{
		{0, 1, 1}, {1, 2, 2}, {2, 3, 1}, {3, 4, 2}, {4, 5, 2},
		{1, 3, 4}, {3, 5, 6}, {0, 2, 5}, {1, 4, 12},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.from, e.to, e.w); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cspp.Solve(g, 0, 5, 4)
		if err != nil || res.Weight != 11 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

func benchRList(n int) shape.RList {
	rng := rand.New(rand.NewSource(9))
	l := make(shape.RList, n)
	w, h := int64(100000), int64(100)
	for i := range l {
		l[i] = shape.RImpl{W: w, H: h}
		w -= 1 + rng.Int63n(50)
		h += 1 + rng.Int63n(50)
	}
	return l
}

// BenchmarkComputeRError measures the paper's O(n²) error table
// (Figures 5–6 machinery) on a 1000-corner staircase.
func BenchmarkComputeRError(b *testing.B) {
	l := benchRList(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selection.ComputeRError(l)
	}
}

// BenchmarkRSelect measures R_Selection (Theorem 2: O(k n²)) at the scale
// the optimizer calls it: n ≈ 1000 corners cut to k = 40.
func BenchmarkRSelect(b *testing.B) {
	l := benchRList(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selection.RSelect(l, 40); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLList(n int) shape.LList {
	rng := rand.New(rand.NewSource(10))
	l := make(shape.LList, n)
	w1, h1, h2 := int64(100000), int64(100), int64(50)
	for i := range l {
		l[i] = shape.LImpl{W1: w1, W2: 40, H1: h1, H2: h2}
		w1 -= 1 + rng.Int63n(20)
		h1 += 1 + rng.Int63n(20)
		h2 += rng.Int63n(10)
		if h2 > h1 {
			h2 = h1
		}
	}
	return l
}

// BenchmarkLSelect measures L_Selection (Theorem 3: O(n³)) on a 500-entry
// L-list — the S-capped worst case of one Section 5 invocation.
func BenchmarkLSelect(b *testing.B) {
	l := benchLList(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := selection.LSelect(l, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimaL measures 4-d Pareto pruning, the optimizer's hot path.
func BenchmarkMinimaL(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	in := make([]shape.LImpl, 100000)
	for i := range in {
		w2 := 1 + rng.Int63n(300)
		h2 := 1 + rng.Int63n(300)
		in[i] = shape.LImpl{W1: w2 + rng.Int63n(300), W2: w2, H1: h2 + rng.Int63n(300), H2: h2}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shape.MinimaL(in)
	}
}

// BenchmarkOptimizeFP1 measures a full optimization of the 25-module FP1
// with placement traceback.
func BenchmarkOptimizeFP1(b *testing.B) {
	tree, err := floorplan.PaperFloorplan("FP1")
	if err != nil {
		b.Fatal(err)
	}
	lib, err := floorplan.RandomModules(tree, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := floorplan.Optimize(tree, lib, floorplan.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStockmeyerBaseline measures the slicing baseline on a 200-module
// random slicing tree, without and with the R_Selection hook.
func BenchmarkStockmeyerBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	tree, err := gen.RandomTree(rng, 200, 0)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := floorplan.RandomModules(tree, 8, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := floorplan.OptimizeSlicing(tree, lib, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("k1=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := floorplan.OptimizeSlicing(tree, lib, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalParallel measures the parallel bottom-up evaluator on FP3
// (120 modules) across worker counts. Workers=1 is the sequential baseline;
// results are bit-identical for every sub-benchmark, so the only difference
// is wall-clock. On a multi-core machine expect near-linear scaling until
// the tree's dependency structure limits the ready set.
func BenchmarkEvalParallel(b *testing.B) {
	tree, err := floorplan.PaperFloorplan("FP3")
	if err != nil {
		b.Fatal(err)
	}
	lib, err := floorplan.RandomModules(tree, 12, 7)
	if err != nil {
		b.Fatal(err)
	}
	opts := floorplan.Options{
		Selection:     floorplan.Selection{K1: 30},
		SkipPlacement: true,
	}
	ref, err := floorplan.Optimize(tree, lib, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			o := opts
			o.Workers = w
			for i := 0; i < b.N; i++ {
				res, err := floorplan.Optimize(tree, lib, o)
				if err != nil {
					b.Fatal(err)
				}
				if res.Best != ref.Best {
					b.Fatalf("workers=%d changed the optimum: %v vs %v", w, res.Best, ref.Best)
				}
			}
		})
	}
}
